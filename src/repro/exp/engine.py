"""Experiment execution engine.

The engine owns the loop every per-figure driver used to hand-roll:
expand a spec's grid into points, skip points already in the result
cache, execute the rest — in-process for ``workers <= 1``, through a
``ProcessPoolExecutor`` otherwise (every point builds its own simulated
node, so sweeps parallelise trivially) — and assemble per-experiment
results plus the top-level ``BENCH_results.json`` perf trajectory.

Failures never abort a sweep: a raising point is captured with its
parameters and traceback in :attr:`PointResult.error`, surfaced through
:attr:`ExperimentResult.failures`, and turned into a non-zero exit
status by the CLI.
"""

from __future__ import annotations

import contextlib
import json
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .cache import ResultCache, code_version
from .registry import get_spec
from .spec import ExperimentSpec, Point

#: Version of the artifact schema (per-experiment JSON and
#: BENCH_results.json).  Bump on any incompatible layout change.
SCHEMA_VERSION = "1"

#: Name of the top-level perf-trajectory artifact.
BENCH_FILENAME = "BENCH_results.json"


def utc_timestamp() -> str:
    """Provenance timestamp (ISO 8601, UTC)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _normalize_payload(raw: Any) -> Dict[str, Any]:
    """Coerce a runner's return value into the canonical payload.

    The payload is round-tripped through JSON immediately so a cold
    result is bit-identical to the same result served warm from disk.
    """
    if isinstance(raw, Mapping):
        rows = raw.get("rows", [])
        sim_time_ns = float(raw.get("sim_time_ns", 0.0))
    else:
        rows, sim_time_ns = raw, 0.0
    payload = {"rows": rows, "sim_time_ns": sim_time_ns}
    return json.loads(json.dumps(payload))


class PointTimeoutError(RuntimeError):
    """A point exceeded its per-point wall-clock budget."""


@contextlib.contextmanager
def _point_alarm(timeout_s: Optional[float]):
    """Bound one point's wall time with ``SIGALRM`` where possible.

    A no-op when no budget is set, off the main thread, or on platforms
    without ``SIGALRM`` — the timeout is best-effort hardening, never a
    portability constraint.
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise PointTimeoutError(
            f"point exceeded the {timeout_s:g}s per-point budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_point(
    name: str,
    params: Dict[str, Any],
    timeout_s: Optional[float] = None,
) -> Tuple[Dict[str, Any], float]:
    """Run one point in the current process (also the pool entry point).

    Returns ``(payload, wall_seconds)``; a raising runner yields an
    ``{"error": traceback, "params": ...}`` payload so failures survive
    the trip back from a worker process with the point that caused them.
    ``KeyboardInterrupt`` and ``SystemExit`` propagate — an operator's
    Ctrl-C must stop the sweep, not become one more failed point.
    """
    start = time.perf_counter()
    try:
        with _point_alarm(timeout_s):
            spec = get_spec(name)
            payload = _normalize_payload(spec.runner(**params))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException:  # noqa: BLE001 — the traceback is the product
        payload = {"error": traceback.format_exc(), "params": dict(params)}
    return payload, time.perf_counter() - start


@dataclass
class PointResult:
    """Outcome of one executed (or cache-served) point."""

    point: Point
    rows: List[List[Any]] = field(default_factory=list)
    sim_time_ns: float = 0.0
    wall_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ExperimentResult:
    """One experiment's assembled sweep result."""

    spec: ExperimentSpec
    quick: bool
    points: List[PointResult] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def columns(self) -> List[str]:
        return list(self.spec.columns)

    @property
    def rows(self) -> List[List[Any]]:
        """All result rows, in point order (failed points contribute none)."""
        out: List[List[Any]] = []
        for p in self.points:
            out.extend(p.rows)
        return out

    def dicts(self) -> List[Dict[str, Any]]:
        """Rows as column-keyed dicts (the benchmark-fixture view)."""
        columns = self.spec.columns
        return [dict(zip(columns, row)) for row in self.rows]

    @property
    def failures(self) -> List[PointResult]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def cached_points(self) -> int:
        return sum(1 for p in self.points if p.cached)

    @property
    def sim_time_ns(self) -> float:
        return sum(p.sim_time_ns for p in self.points)

    def to_payload(self) -> Dict[str, Any]:
        """The per-experiment JSON artifact."""
        return {
            "schema_version": SCHEMA_VERSION,
            "experiment": self.spec.name,
            "title": self.spec.title,
            "source": self.spec.source,
            "git_sha": code_version(),
            "timestamp": utc_timestamp(),
            "quick": self.quick,
            "spec_hash": self.spec.spec_hash(),
            "columns": self.columns,
            "rows": self.rows,
            "points": len(self.points),
            "cached_points": self.cached_points,
            "failed_points": len(self.failures),
            "failures": [
                {"params": p.point.params, "traceback": p.error}
                for p in self.failures
            ],
            "wall_s": round(self.wall_s, 6),
            "sim_time_s": self.sim_time_ns / 1e9,
        }


class Engine:
    """Runs registered experiments: grid -> cache -> pool -> results.

    Parameters
    ----------
    workers:
        ``<= 1`` runs points in-process (deterministic, debuggable);
        ``N > 1`` fans points out over N worker processes.
    cache:
        Optional :class:`ResultCache`; None disables caching entirely.
    refresh:
        Recompute every point and overwrite cache entries.
    version:
        Code-version string for cache keys (defaults to the git SHA).
    point_timeout_s:
        Optional wall-clock budget per point; an overrunning point is
        recorded as a failure (``PointTimeoutError`` traceback) instead
        of hanging the sweep.
    max_point_retries:
        How many times a point lost to a worker-process crash is
        requeued onto a fresh pool before it is recorded as failed.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        refresh: bool = False,
        version: Optional[str] = None,
        point_timeout_s: Optional[float] = None,
        max_point_retries: int = 2,
    ):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.refresh = refresh
        self.version = version or code_version()
        self.point_timeout_s = point_timeout_s
        self.max_point_retries = max(0, int(max_point_retries))
        #: points actually computed (cache misses) across this engine's life
        self.executed_points = 0
        #: points served from the cache across this engine's life
        self.cached_points = 0

    # -- public API -----------------------------------------------------

    def run(
        self,
        name: str,
        quick: bool = False,
        only: Optional[Mapping[str, Any]] = None,
    ) -> ExperimentResult:
        """Run one experiment; *only* filters points by parameter values."""
        return self.run_many([name], quick=quick, only=only)[name]

    def run_many(
        self,
        names: Sequence[str],
        quick: bool = False,
        only: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, ExperimentResult]:
        """Run several experiments as one load-balanced point pool."""
        specs = [get_spec(name) for name in names]
        plan: List[Tuple[ExperimentSpec, Point]] = []
        for spec in specs:
            for point in spec.points(quick):
                if only and any(
                    axis in point.params and point.params[axis] != value
                    for axis, value in only.items()
                ):
                    continue
                plan.append((spec, point))

        started = time.perf_counter()
        results: Dict[Tuple[str, int], PointResult] = {}
        pending: List[Tuple[ExperimentSpec, Point, Optional[str]]] = []

        for spec, point in plan:
            key = self._cache_key(spec, point)
            payload = None
            if key is not None and not self.refresh and self.cache is not None:
                payload = self.cache.get(key)
            if payload is not None:
                self.cached_points += 1
                results[(spec.name, point.index)] = self._to_point_result(
                    point, payload, wall_s=0.0, cached=True
                )
            else:
                pending.append((spec, point, key))

        for (spec, point, key), (payload, wall_s) in zip(
            pending, self._execute(pending)
        ):
            self.executed_points += 1
            if key is not None and self.cache is not None and "error" not in payload:
                self.cache.put(key, payload)
            results[(spec.name, point.index)] = self._to_point_result(
                point, payload, wall_s=wall_s, cached=False
            )

        total_wall = time.perf_counter() - started
        out: Dict[str, ExperimentResult] = {}
        for spec in specs:
            point_results = [
                results[key]
                for key in sorted(results)
                if key[0] == spec.name
            ]
            wall = sum(p.wall_s for p in point_results)
            out[spec.name] = ExperimentResult(
                spec=spec, quick=quick, points=point_results, wall_s=wall
            )
        # Distribute unattributed wall time (pool scheduling) nowhere;
        # run_many callers that need the true elapsed time measure it
        # around this call.  Kept simple on purpose.
        del total_wall
        return out

    # -- internals ------------------------------------------------------

    def _cache_key(self, spec: ExperimentSpec, point: Point) -> Optional[str]:
        if self.cache is None:
            return None
        return ResultCache.key(self.version, spec.spec_hash(), point.params)

    @staticmethod
    def _to_point_result(
        point: Point, payload: Dict[str, Any], wall_s: float, cached: bool
    ) -> PointResult:
        if "error" in payload:
            return PointResult(
                point=point, wall_s=wall_s, cached=cached,
                error=payload["error"],
            )
        return PointResult(
            point=point,
            rows=payload.get("rows", []),
            sim_time_ns=float(payload.get("sim_time_ns", 0.0)),
            wall_s=wall_s,
            cached=cached,
        )

    def _execute(
        self, pending: Sequence[Tuple[ExperimentSpec, Point, Optional[str]]]
    ) -> Iterable[Tuple[Dict[str, Any], float]]:
        if not pending:
            return []
        if self.workers <= 1 or len(pending) == 1:
            return [
                execute_point(spec.name, point.params, self.point_timeout_s)
                for spec, point, _ in pending
            ]
        return self._execute_pool(pending)

    def _execute_pool(
        self, pending: Sequence[Tuple[ExperimentSpec, Point, Optional[str]]]
    ) -> List[Tuple[Dict[str, Any], float]]:
        """Pool execution with crash containment.

        A worker that dies (OOM-killed, segfaulting extension, ...)
        breaks the whole ``ProcessPoolExecutor``: every outstanding
        future raises ``BrokenProcessPool``.  Those points are requeued
        onto a fresh pool — innocent points complete on the next round,
        while a point that keeps killing its worker exhausts
        ``max_point_retries`` and is recorded as a failure with its
        parameters, never aborting the sweep.
        """
        context = _pool_context()
        results: List[Optional[Tuple[Dict[str, Any], float]]] = (
            [None] * len(pending)
        )
        crashes = [0] * len(pending)
        queue = list(range(len(pending)))
        while queue:
            requeue: List[int] = []
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(queue)), mp_context=context
            ) as pool:
                futures = {
                    idx: pool.submit(
                        execute_point,
                        pending[idx][0].name,
                        pending[idx][1].params,
                        self.point_timeout_s,
                    )
                    for idx in queue
                }
                for idx, future in futures.items():
                    try:
                        results[idx] = future.result()
                    except BrokenProcessPool as crash:
                        crashes[idx] += 1
                        if crashes[idx] > self.max_point_retries:
                            _, point, _ = pending[idx]
                            results[idx] = (
                                {
                                    "error": (
                                        "worker process crashed "
                                        f"({crash or 'pool broken'}); gave "
                                        f"up after {crashes[idx]} attempts"
                                    ),
                                    "params": dict(point.params),
                                },
                                0.0,
                            )
                        else:
                            requeue.append(idx)
            queue = requeue
        return [result for result in results if result is not None]


def _pool_context():
    """Prefer fork on POSIX: workers inherit the loaded registry and the
    imported simulator for free; fall back to the platform default."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------


def bench_payload(
    results: Mapping[str, ExperimentResult],
    workers: int,
    wall_s: float,
    quick: bool,
) -> Dict[str, Any]:
    """Assemble the ``BENCH_results.json`` perf-trajectory payload."""
    experiments = {}
    for name, result in results.items():
        experiments[name] = {
            "title": result.spec.title,
            "source": result.spec.source,
            "points": len(result.points),
            "cached_points": result.cached_points,
            "failed_points": len(result.failures),
            "rows": len(result.rows),
            "wall_s": round(result.wall_s, 6),
            "sim_time_s": result.sim_time_ns / 1e9,
            "ok": result.ok,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "repro-bench",
        "git_sha": code_version(),
        "timestamp": utc_timestamp(),
        "quick": quick,
        "workers": workers,
        "wall_s": round(wall_s, 6),
        "experiments": experiments,
    }


def write_artifacts(
    results: Mapping[str, ExperimentResult],
    out_dir: Path | str,
    workers: int = 1,
    wall_s: float = 0.0,
    quick: bool = False,
) -> Path:
    """Write per-experiment JSON files plus ``BENCH_results.json``.

    Returns the path of the top-level BENCH artifact.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, result in results.items():
        (out / f"{name}.json").write_text(
            json.dumps(result.to_payload(), indent=2)
        )
    bench = out / BENCH_FILENAME
    bench.write_text(
        json.dumps(bench_payload(results, workers, wall_s, quick), indent=2)
    )
    return bench


def verify_bench(
    payload: Mapping[str, Any] | Path | str,
    expected: Optional[Iterable[str]] = None,
) -> List[str]:
    """Validate a BENCH payload (or file); returns a list of problems.

    Checks the schema version, provenance fields, that every expected
    experiment (default: the full registry) is present, and that none
    failed.  An empty return value means the artifact is sound.
    """
    from .registry import experiment_names

    if not isinstance(payload, Mapping):
        try:
            payload = json.loads(Path(payload).read_text())
        except (OSError, ValueError) as exc:
            return [f"unreadable BENCH file: {exc}"]
    problems = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version {payload.get('schema_version')!r} != "
            f"{SCHEMA_VERSION!r}"
        )
    for fld in ("git_sha", "timestamp"):
        if not payload.get(fld):
            problems.append(f"missing provenance field {fld!r}")
    experiments = payload.get("experiments")
    if not isinstance(experiments, Mapping):
        problems.append("missing experiments section")
        return problems
    names = list(expected) if expected is not None else experiment_names()
    for name in names:
        if name not in experiments:
            problems.append(f"experiment {name!r} missing from BENCH output")
        elif not experiments[name].get("ok", False):
            problems.append(f"experiment {name!r} recorded a failure")
    return problems
