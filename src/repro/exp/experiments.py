"""The registered experiments: every paper figure, the application
study, the UVM extension, and the partition sweep.

Each experiment is one :class:`~repro.exp.spec.ExperimentSpec` — a
parameter grid plus a module-level runner — replacing the hand-written
per-figure drivers that used to live in ``cli.py``, ``report.py`` and
the benchmark modules.  Runners are intentionally small: they call the
same ``repro.bench`` / ``repro.apps`` / ``repro.uvm`` /
``repro.partition`` entry points the paper benchmarks always used, one
grid point at a time, on a freshly built simulated node.

All runners are deterministic (the simulator seeds every RNG), so a
point's rows are a pure function of its parameters and the code
version — the property the result cache relies on.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..hw.config import GiB, KiB, MiB
from .registry import register
from .spec import ExperimentSpec

# ----------------------------------------------------------------------
# Table 1 — allocator capability matrix
# ----------------------------------------------------------------------


def run_table1(xnack: bool) -> List[List[Any]]:
    from ..core.allocators import allocator_table

    return [
        [r["allocator"], xnack, r["gpu_access"], r["cpu_access"],
         r["physical_allocation"]]
        for r in allocator_table(xnack)
    ]


register(ExperimentSpec.define(
    name="table1",
    title="Memory allocators on MI300A",
    source="Table 1",
    columns=["allocator", "xnack", "gpu_access", "cpu_access", "physical"],
    runner=run_table1,
    grid={"xnack": [False, True]},
    description="Allocator capability matrix (GPU/CPU access, physical "
                "allocation policy) per XNACK mode.",
))


# ----------------------------------------------------------------------
# Fig. 2 — pointer-chase latency
# ----------------------------------------------------------------------

FIG2_SIZES = (
    1 * KiB, 32 * KiB, 1 * MiB, 32 * MiB, 128 * MiB,
    256 * MiB, 512 * MiB, 1 * GiB, 2 * GiB, 4 * GiB,
)
FIG2_QUICK_SIZES = (1 * KiB, 1 * MiB, 128 * MiB, 512 * MiB)


def run_fig2(allocator: str, device: str, sizes, memory_gib: int):
    from ..bench import multichase

    samples = multichase.chase_curve(
        allocator, device, sizes=list(sizes), memory_gib=memory_gib
    )
    return [
        [s.allocator, s.device, s.size_bytes, s.latency_ns] for s in samples
    ]


register(ExperimentSpec.define(
    name="fig2",
    title="Pointer-chase latency",
    source="Fig. 2",
    columns=["allocator", "device", "size_bytes", "latency_ns"],
    runner=run_fig2,
    grid={
        "allocator": [
            "malloc", "malloc+register", "hipMalloc", "hipHostMalloc",
            "hipMallocManaged(xnack=0)", "hipMallocManaged(xnack=1)",
        ],
        "device": ["cpu", "gpu"],
    },
    quick_grid={
        "allocator": ["malloc", "hipMalloc"],
        "device": ["cpu", "gpu"],
    },
    fixed={"sizes": FIG2_SIZES, "memory_gib": 16},
    quick_fixed={"sizes": FIG2_QUICK_SIZES, "memory_gib": 16},
    description="Latency-vs-size curves per allocator and device "
                "(one fresh APU per curve).",
))


# ----------------------------------------------------------------------
# Fig. 3 — STREAM TRIAD bandwidth
# ----------------------------------------------------------------------

FIG3_GPU_ALLOCATORS = (
    "hipMalloc", "hipHostMalloc", "malloc+register",
    "hipMallocManaged(xnack=0)", "hipMallocManaged(xnack=1)",
    "malloc", "__managed__",
)
FIG3_CPU_ALLOCATORS = (
    "hipMalloc", "hipHostMalloc", "malloc", "hipMallocManaged(xnack=1)",
)


def _fig3_cases() -> List[str]:
    cases = []
    for allocator in FIG3_GPU_ALLOCATORS:
        inits = ("cpu",) if allocator == "__managed__" else ("cpu", "gpu")
        cases.extend(f"gpu|{allocator}|{init}" for init in inits)
    for allocator in FIG3_CPU_ALLOCATORS:
        inits = ("cpu", "gpu") if allocator == "malloc" else ("cpu",)
        cases.extend(f"cpu|{allocator}|{init}" for init in inits)
    return cases


def run_fig3(case: str, memory_gib: int):
    from ..bench import stream

    device, allocator, init = case.split("|")
    if device == "gpu":
        r = stream.gpu_triad(allocator, init_device=init,
                             memory_gib=memory_gib)
    else:
        r = stream.cpu_triad(allocator, init_device=init,
                             memory_gib=memory_gib)
    return [[r.device, r.allocator, r.init_device, r.bandwidth_bytes_per_s,
             r.best_threads]]


register(ExperimentSpec.define(
    name="fig3",
    title="STREAM TRIAD bandwidth",
    source="Fig. 3",
    columns=["device", "allocator", "init_device", "bandwidth_bytes_per_s",
             "best_threads"],
    runner=run_fig3,
    grid={"case": _fig3_cases()},
    quick_grid={"case": [
        "gpu|hipMalloc|cpu", "gpu|malloc|cpu",
        "cpu|hipMalloc|cpu", "cpu|malloc|cpu",
    ]},
    fixed={"memory_gib": 16},
    description="Best TRIAD bandwidth per device/allocator/first-touch "
                "combination (CPU side sweeps thread counts).",
))


# ----------------------------------------------------------------------
# Section 4.3 — legacy hipMemcpy bandwidth
# ----------------------------------------------------------------------


def run_memcpy(transfer: str, sdma: bool, copy_bytes: int, memory_gib: int):
    from ..bench import hipbandwidth

    src, dst = {
        label: (s, d) for label, s, d in hipbandwidth.COMBINATIONS
    }[transfer]
    bandwidth = hipbandwidth.measure_memcpy(
        src, dst, sdma_enabled=sdma, copy_bytes=copy_bytes,
        memory_gib=memory_gib,
    )
    return [[transfer, sdma, copy_bytes, bandwidth]]


register(ExperimentSpec.define(
    name="memcpy",
    title="hipMemcpy bandwidth",
    source="Section 4.3",
    columns=["transfer", "sdma", "copy_bytes", "bandwidth_bytes_per_s"],
    runner=run_memcpy,
    grid={
        "transfer": [
            "malloc -> hipMalloc", "hipHostMalloc -> hipMalloc",
            "hipMalloc -> hipMalloc",
        ],
        "sdma": [True, False],
    },
    fixed={"copy_bytes": 256 * MiB, "memory_gib": 4},
    quick_fixed={"copy_bytes": 64 * MiB, "memory_gib": 4},
    description="Legacy copy-path bandwidth with the SDMA engine on/off.",
))


# ----------------------------------------------------------------------
# Fig. 4 — isolated atomics throughput
# ----------------------------------------------------------------------


def run_fig4(device: str, dtype: str, elements: int):
    from ..bench import histogram

    sweep = histogram.cpu_sweep if device == "cpu" else histogram.gpu_sweep
    return [
        [s.device, s.dtype, s.elements, s.threads, s.updates_per_s]
        for s in sweep(elements, dtype)
    ]


register(ExperimentSpec.define(
    name="fig4",
    title="Atomics throughput (isolated)",
    source="Fig. 4",
    columns=["device", "dtype", "elements", "threads", "updates_per_s"],
    runner=run_fig4,
    grid={
        "device": ["cpu", "gpu"],
        "dtype": ["uint64", "fp64"],
        "elements": [1, 1 << 10, 1 << 20, 1 << 30],
    },
    quick_grid={
        "device": ["cpu", "gpu"],
        "dtype": ["uint64", "fp64"],
        "elements": [1 << 10, 1 << 20],
    },
    description="Parallel-histogram atomic-update throughput across "
                "thread counts, per device, dtype and array size.",
))


# ----------------------------------------------------------------------
# Fig. 5 — co-running CPU+GPU atomics
# ----------------------------------------------------------------------

FIG5_CPU_THREADS = (1, 3, 6, 12, 24)
FIG5_GPU_THREADS = (64, 640, 1280, 2304, 3328, 6400, 10496, 14592)


def run_fig5(dtype: str, elements: int, cpu_threads, gpu_threads):
    from ..bench import histogram

    return [
        [s.dtype, s.elements, s.cpu_threads, s.gpu_threads,
         s.result.cpu_updates_per_s, s.result.gpu_updates_per_s,
         s.result.cpu_relative, s.result.gpu_relative]
        for s in histogram.hybrid_grid(
            elements, dtype, list(cpu_threads), list(gpu_threads)
        )
    ]


register(ExperimentSpec.define(
    name="fig5",
    title="Atomics throughput (co-running)",
    source="Fig. 5",
    columns=["dtype", "elements", "cpu_threads", "gpu_threads",
             "cpu_updates_per_s", "gpu_updates_per_s",
             "cpu_relative", "gpu_relative"],
    runner=run_fig5,
    grid={"dtype": ["uint64", "fp64"], "elements": [1 << 10, 1 << 20]},
    quick_grid={"dtype": ["uint64"], "elements": [1 << 10, 1 << 20]},
    fixed={"cpu_threads": FIG5_CPU_THREADS, "gpu_threads": FIG5_GPU_THREADS},
    description="CPU x GPU co-run heatmaps of relative atomics "
                "throughput, normalised to the Fig. 4 baselines.",
))


# ----------------------------------------------------------------------
# Fig. 6 — allocation / deallocation speed
# ----------------------------------------------------------------------

FIG6_SIZES = (2, 32, 1 * KiB, 16 * KiB, 256 * KiB, 2 * MiB, 16 * MiB,
              128 * MiB, 1 * GiB)


def run_fig6(allocator: str, sizes):
    from ..bench import allocspeed

    return [
        [s.allocator, s.size_bytes, s.alloc_ns, s.free_ns]
        for s in allocspeed.cost_sweep(allocator, sizes=list(sizes))
    ]


register(ExperimentSpec.define(
    name="fig6",
    title="Allocation / deallocation time",
    source="Fig. 6",
    columns=["allocator", "size_bytes", "alloc_ns", "free_ns"],
    runner=run_fig6,
    grid={"allocator": [
        "malloc", "hipMalloc", "hipHostMalloc",
        "hipMallocManaged(xnack=0)", "hipMallocManaged(xnack=1)",
    ]},
    fixed={"sizes": FIG6_SIZES},
    quick_fixed={"sizes": (2, 1 * KiB, 1 * MiB, 1 * GiB)},
    description="Cost-model alloc/free curves per allocator across sizes.",
))


# ----------------------------------------------------------------------
# Fig. 7 — page-fault throughput
# ----------------------------------------------------------------------

FIG7_PAGE_COUNTS = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000,
                    10_000_000)


def run_fig7(scenario: str, page_counts):
    from ..bench import pagefault

    return [
        [s.scenario, s.pages, s.pages_per_s]
        for s in pagefault.throughput_curve(
            scenario, page_counts=list(page_counts)
        )
    ]


register(ExperimentSpec.define(
    name="fig7",
    title="Page-fault throughput",
    source="Fig. 7",
    columns=["scenario", "pages", "pages_per_s"],
    runner=run_fig7,
    grid={"scenario": ["gpu_major", "gpu_minor", "cpu", "cpu12"]},
    fixed={"page_counts": FIG7_PAGE_COUNTS},
    description="Throughput-vs-page-count curves for the four fault "
                "scenarios of the calibrated fault model.",
))


# ----------------------------------------------------------------------
# Fig. 8 — single-fault latency distribution
# ----------------------------------------------------------------------


def run_fig8(samples: int):
    from ..bench import pagefault

    return [
        [s.scenario, s.mean_us, s.p50_us, s.p95_us]
        for s in pagefault.latency_distributions(samples=samples)
    ]


register(ExperimentSpec.define(
    name="fig8",
    title="Single-fault latency",
    source="Fig. 8",
    columns=["fault_type", "mean_us", "p50_us", "p95_us"],
    runner=run_fig8,
    fixed={"samples": 50_000},
    quick_fixed={"samples": 10_000},
    description="Latency distribution (mean/p50/p95) of resolving one "
                "CPU minor, GPU minor, or GPU major fault.",
))


# ----------------------------------------------------------------------
# Fig. 9 — GPU TLB misses in TRIAD
# ----------------------------------------------------------------------


def run_fig9(allocator: str, array_bytes: int, memory_gib: int):
    from ..bench import stream

    r = stream.gpu_triad(allocator, array_bytes=array_bytes,
                         memory_gib=memory_gib)
    return [[r.allocator, r.gpu_tlb_misses, r.bandwidth_bytes_per_s]]


register(ExperimentSpec.define(
    name="fig9",
    title="GPU TLB misses in TRIAD",
    source="Fig. 9",
    columns=["allocator", "gpu_tlb_misses", "bandwidth_bytes_per_s"],
    runner=run_fig9,
    grid={"allocator": [
        "malloc", "malloc+register", "hipMalloc", "hipHostMalloc",
        "hipMallocManaged(xnack=0)",
    ]},
    fixed={"array_bytes": 256 * MiB, "memory_gib": 16},
    quick_fixed={"array_bytes": 64 * MiB, "memory_gib": 16},
    description="rocprof translation-miss counter per allocator — the "
                "adaptive-fragment signature behind hipMalloc's edge.",
))


# ----------------------------------------------------------------------
# Fig. 10 — CPU page faults in CPU STREAM
# ----------------------------------------------------------------------

FIG10_CONFIGS: Dict[str, Any] = {
    # label -> (allocator, xnack, init_device)
    "malloc / baseline": ("malloc", False, "cpu"),
    "malloc / xnack": ("malloc", True, "cpu"),
    "malloc / gpu-init": ("malloc", True, "gpu"),
    "hipMalloc / baseline": ("hipMalloc", False, "cpu"),
    "hipMalloc / gpu-init": ("hipMalloc", False, "gpu"),
    "hipHostMalloc / baseline": ("hipHostMalloc", False, "cpu"),
    "hipHostMalloc / gpu-init": ("hipHostMalloc", False, "gpu"),
    "managed / xnack": ("hipMallocManaged(xnack=1)", True, "cpu"),
}


def run_fig10(config: str, array_bytes: int, memory_gib: int):
    from ..bench import stream

    allocator, xnack, init = FIG10_CONFIGS[config]
    report = stream.cpu_fault_count(
        allocator, xnack=xnack, init_device=init,
        array_bytes=array_bytes, memory_gib=memory_gib,
    )
    return [[config, allocator, xnack, init, report.page_faults]]


register(ExperimentSpec.define(
    name="fig10",
    title="CPU page faults in CPU STREAM",
    source="Fig. 10",
    columns=["config", "allocator", "xnack", "init_device", "page_faults"],
    runner=run_fig10,
    grid={"config": list(FIG10_CONFIGS)},
    quick_grid={"config": [
        "malloc / baseline", "malloc / xnack", "hipMalloc / baseline",
        "hipMalloc / gpu-init", "hipHostMalloc / baseline",
        "managed / xnack",
    ]},
    fixed={"array_bytes": 610 * MiB, "memory_gib": 16},
    quick_fixed={"array_bytes": 64 * MiB, "memory_gib": 16},
    description="perf-stat fault totals across allocation + init + "
                "TRIAD, per allocator/XNACK/first-touch configuration.",
))


# ----------------------------------------------------------------------
# Fig. 11 — application study (the six Rodinia ports)
# ----------------------------------------------------------------------

APP_QUICK_PARAMS: Dict[str, Dict[str, int]] = {
    "backprop": {"input_units": 1 << 17},
    "dwt2d": {"dim": 2048},
    "heartwall": {"frame_dim": 512, "frames": 10},
    "hotspot": {"grid": 512, "iterations": 20},
    "nn": {"records": 1 << 20},
    "srad_v1": {"dim": 512, "iterations": 10},
}


def run_app(app: str, profile: str):
    from ..apps import ALL_APPS, compare

    instance = ALL_APPS[app]()
    params = APP_QUICK_PARAMS[app] if profile == "quick" else None
    baseline = instance.run("explicit", params=params)
    rows, sim_time_ns = [], baseline.total_time_s * 1e9
    for variant in instance.variants:
        if variant == "explicit":
            continue
        result = instance.run(variant, params=params)
        sim_time_ns += result.total_time_s * 1e9
        c = compare(baseline, result)
        rows.append([app, variant, c.total_time_ratio, c.compute_time_ratio,
                     c.memory_ratio])
    return {"rows": rows, "sim_time_ns": sim_time_ns}


register(ExperimentSpec.define(
    name="apps",
    title="Application study: unified vs explicit",
    source="Fig. 11",
    columns=["app", "variant", "total_time_ratio", "compute_time_ratio",
             "memory_ratio"],
    runner=run_app,
    grid={"app": ["backprop", "dwt2d", "heartwall", "hotspot", "nn",
                  "srad_v1"]},
    fixed={"profile": "full"},
    quick_fixed={"profile": "quick"},
    description="Unified-variant time and memory ratios versus the "
                "explicit baseline for the six Rodinia ports.",
))


# ----------------------------------------------------------------------
# Extension — UPM vs UVM vs explicit
# ----------------------------------------------------------------------


def run_uvm(working_set_bytes: int, iterations: int):
    from ..uvm import three_way_comparison

    results = three_way_comparison(
        working_set_bytes=working_set_bytes, iterations=iterations
    )
    baseline = results["explicit/discrete"]
    rows = [
        [name, r.time_ms, r.relative_to(baseline), r.moved_bytes]
        for name, r in results.items()
    ]
    sim_time_ns = sum(r.time_ms for r in results.values()) * 1e6
    return {"rows": rows, "sim_time_ns": sim_time_ns}


register(ExperimentSpec.define(
    name="uvm",
    title="UPM vs UVM vs explicit",
    source="Section 6 (extension)",
    columns=["model", "time_ms", "vs_explicit", "moved_bytes"],
    runner=run_uvm,
    fixed={"working_set_bytes": 1 * GiB, "iterations": 10},
    quick_fixed={"working_set_bytes": 256 * MiB, "iterations": 10},
    description="The same alternating CPU/GPU pipeline under explicit, "
                "UVM, UVM+prefetch, and UPM memory models.",
))


# ----------------------------------------------------------------------
# Partitioning — SPX/TPX/CPX x NPS1/NPS4 sweep
# ----------------------------------------------------------------------


def _partition_modes() -> List[str]:
    from ..partition import all_valid_modes

    return [mode.describe() for mode in all_valid_modes()]


def run_partition(mode: str, memory_gib: int, array_bytes: int):
    from ..partition import (
        all_valid_modes,
        device_stream_bandwidth,
        kernel_launch_factor,
    )
    from ..runtime.hip import make_runtime

    config = {m.describe(): m for m in all_valid_modes()}[mode]
    hip = make_runtime(memory_gib, partition=config)
    apu = hip.apu
    aggregate, local_fractions = 0.0, []
    for device in apu.logical_devices:
        hip.hipSetDevice(device.index)
        buf = hip.hipMalloc(array_bytes)
        frames = buf.vma.resident_frames()
        local = apu.placement.local_fraction(frames, device.index)
        local_fractions.append(local)
        aggregate += device_stream_bandwidth(
            apu.config, device, apu.buffer_traits(buf), local
        )
        hip.hipFree(buf)
    first = apu.logical_devices[0]
    return [[
        mode,
        len(apu.logical_devices),
        first.compute_units,
        first.memory_capacity_bytes / GiB,
        first.ic_reach_bytes / MiB,
        min(local_fractions),
        aggregate,
        kernel_launch_factor(apu.config, config),
    ]]


register(ExperimentSpec.define(
    name="partition",
    title="Compute/memory partition modes",
    source="Partitioning guide",
    columns=["mode", "devices", "compute_units_per_device",
             "memory_gib_per_device", "ic_reach_mib_per_device",
             "min_local_fraction", "aggregate_bw_bytes_per_s",
             "launch_factor"],
    runner=run_partition,
    grid={"mode": _partition_modes()},
    fixed={"memory_gib": 4, "array_bytes": 64 * MiB},
    quick_fixed={"memory_gib": 2, "array_bytes": 16 * MiB},
    description="Logical-device shapes and aggregate per-device STREAM "
                "bandwidth for every valid partition mode.",
))
