"""On-disk result cache for experiment points.

Every point result is stored as one JSON file keyed by

    sha256(code_version + spec_hash + canonical(params))

so a re-run (or a resumed sweep) recomputes nothing that is already on
disk, and any change to the code, the spec, or the point parameters
misses cleanly.  Payloads are JSON-normalised before first use, so a
warm hit is bit-identical to the cold computation.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/exp``;
``repro run --no-cache`` bypasses it and ``--refresh`` overwrites it.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import Any, Dict, Optional

from .spec import canonical_json

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Version string for cache keys and artifact provenance.

    The git commit SHA when running from a checkout, else the package
    version.  ``$REPRO_CODE_VERSION`` overrides both (hermetic tests,
    builds without git metadata).
    """
    global _CODE_VERSION
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CODE_VERSION is None:
        _CODE_VERSION = _detect_code_version()
    return _CODE_VERSION


def _detect_code_version() -> str:
    here = Path(__file__).resolve()
    try:
        sha = subprocess.run(
            ["git", "-C", str(here.parent), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if sha.returncode == 0 and sha.stdout.strip():
            return sha.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    try:
        from importlib.metadata import version

        return f"repro-{version('repro')}"
    except Exception:
        return "repro-unknown"


def default_cache_dir() -> Path:
    """The cache root honoured by the CLI and the engine default."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "exp"


class ResultCache:
    """Content-addressed JSON store for point results.

    Entries are written as ``{"sha256": ..., "payload": ...}`` so a
    truncated or bit-rotted file is detected on read instead of feeding
    silently-wrong rows into a sweep.  A corrupt entry counts as a miss
    and is moved into ``<root>/quarantine/`` for post-mortem; entries in
    the pre-checksum layout (a bare payload object) are still served.
    """

    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    @staticmethod
    def key(version: str, spec_hash: str, params: Dict[str, Any]) -> str:
        """Cache key for one point of one spec at one code version."""
        blob = canonical_json(
            {"code": version, "spec": spec_hash, "params": params}
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    @staticmethod
    def _digest(payload: Any) -> str:
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it cannot hit again."""
        dest = self.root / self.QUARANTINE_DIR / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            path.replace(dest)
        except OSError:
            pass  # best effort — the read already counted as a miss
        self.quarantined += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or None on a miss (or a corrupt entry)."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            doc = json.loads(text)
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        if isinstance(doc, dict) and set(doc) == {"sha256", "payload"}:
            if doc["sha256"] != self._digest(doc["payload"]):
                self._quarantine(path)
                self.misses += 1
                return None
            payload = doc["payload"]
        else:
            payload = doc  # pre-checksum entry
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Store *payload* (checksummed) under *key*; atomic via rename."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"sha256": self._digest(payload), "payload": payload}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        tmp.replace(path)
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()
