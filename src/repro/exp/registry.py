"""Central experiment registry.

Experiments register once (import time of :mod:`repro.exp.experiments`)
and every consumer — the ``repro run`` CLI, the report collectors, the
benchmark fixtures, the BENCH artifact writer — resolves them here
instead of keeping its own per-figure function table.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from .spec import ExperimentSpec

#: name -> spec, in registration order (dicts preserve insertion order).
REGISTRY: Dict[str, ExperimentSpec] = {}


class UnknownExperimentError(KeyError):
    """Raised when an experiment name is not in the registry."""

    def __init__(self, name: str):
        known = ", ".join(sorted(REGISTRY))
        super().__init__(f"unknown experiment {name!r}; known: {known}")
        self.experiment = name


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add *spec* to the registry (idempotent per name; re-registration
    replaces, which keeps interactive reloads painless)."""
    REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Resolve one experiment by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(name) from None


def all_specs() -> List[ExperimentSpec]:
    """Every registered experiment, in registration order."""
    return list(REGISTRY.values())


def experiment_names() -> List[str]:
    """Registered experiment names, in registration order."""
    return list(REGISTRY)


@contextmanager
def temporarily_registered(spec: ExperimentSpec) -> Iterator[ExperimentSpec]:
    """Register *spec* for the duration of a ``with`` block (tests)."""
    previous = REGISTRY.get(spec.name)
    register(spec)
    try:
        yield spec
    finally:
        if previous is None:
            REGISTRY.pop(spec.name, None)
        else:
            REGISTRY[spec.name] = previous
