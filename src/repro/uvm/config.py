"""Configuration of the discrete-GPU UVM comparison system.

The paper's motivation (Sections 1-2): before UPM, the unified memory
programming model was implemented in software — Nvidia-style Unified
Virtual Memory on a discrete GPU — at a high cost: page faults and page
migrations over the PCIe link degrade applications by 2-3x (sometimes
14x) versus explicit management [14].  This package models such a
system so the repository can quantify what MI300A's hardware unification
eliminates.

Constants follow the published UVM characterisations the paper cites
(Allen & Ge [2, 3]; Chien et al. [14]; Landaverde et al. [24]):
double-digit-microsecond fault-batch service, ~tens of GB/s effective
migration bandwidth, and device memory an order of magnitude faster
than the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import GiB, KiB, MiB

#: UVM migrates at 2 MiB "large page" granularity when it can batch.
UVM_MIGRATION_CHUNK_BYTES = 2 * MiB

PAGE_SIZE = 4 * KiB


@dataclass(frozen=True)
class UVMConfig:
    """A discrete-GPU node with software unified memory."""

    name: str = "discrete-UVM"
    #: Device (GPU) memory capacity — the oversubscription boundary.
    device_memory_bytes: int = 64 * GiB
    #: Host memory capacity.
    host_memory_bytes: int = 512 * GiB
    #: Achievable GPU STREAM bandwidth on device-resident data.
    device_bandwidth_bytes_per_s: float = 1.6e12
    #: Achievable CPU STREAM bandwidth on host-resident data.
    host_bandwidth_bytes_per_s: float = 200e9
    #: Effective interconnect (PCIe gen4 x16-class) transfer bandwidth.
    link_bandwidth_bytes_per_s: float = 25e9
    #: Remote access over the link (CPU reading device memory and vice
    #: versa) — UVM avoids it by migrating, but eviction writes use it.
    remote_access_bandwidth_bytes_per_s: float = 12e9

    #: GPU fault-batch service time: the driver stalls the faulting
    #: warps, assembles a batch, and services it in one go [2, 3].
    gpu_fault_batch_ns: float = 45_000.0
    #: Pages the driver typically services per batch.
    gpu_fault_batch_pages: int = 256
    #: CPU-side fault service (host page fault + unmap from GPU).
    cpu_fault_ns: float = 25_000.0
    #: Per-page migration engine setup beyond raw transfer time,
    #: calibrated so the fault-driven unified model lands in the cited
    #: 2-3x degradation band versus explicit management [14].
    migration_per_page_ns: float = 250.0
    #: Prefetch (cudaMemPrefetchAsync-style) per-chunk setup.
    prefetch_chunk_ns: float = 8_000.0

    #: Kernel launch overhead.
    kernel_launch_ns: float = 4_000.0

    @property
    def device_pages(self) -> int:
        """Device-memory capacity in pages."""
        return self.device_memory_bytes // PAGE_SIZE


def default_uvm_config() -> UVMConfig:
    """The reference discrete-GPU UVM system."""
    return UVMConfig()
