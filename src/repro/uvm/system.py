"""Discrete-GPU system with software unified memory (UVM).

Models the pre-UPM world the paper contrasts against: CPU and GPU have
*separate* physical memories joined by an interconnect.  Managed
allocations hold a per-page residency bit; touching a non-resident page
faults, and the driver migrates pages (in batches) across the link.
The GPU can oversubscribe its memory by evicting pages back to the host
— the one capability UPM gives up (paper Section 2.1).

The same :class:`~repro.runtime.kernels.KernelSpec` descriptors used on
the simulated APU run here, so workloads can be compared apples to
apples across the three memory models:

* explicit (discrete): hipMalloc + hipMemcpy over the link,
* UVM (discrete): managed memory + fault-driven migration,
* UPM (MI300A): one physical memory, no movement at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional

import numpy as np

from ..hw.clock import SimClock
from .config import PAGE_SIZE, UVM_MIGRATION_CHUNK_BYTES, UVMConfig, default_uvm_config

Location = Literal["host", "device"]


class DeviceOutOfMemoryError(MemoryError):
    """Explicit device allocation exceeded the discrete GPU's memory."""


@dataclass
class UVMCounters:
    """Observable UVM activity (what [2, 3]'s driver instrumentation sees)."""

    gpu_fault_batches: int = 0
    gpu_faulted_pages: int = 0
    cpu_faults: int = 0
    migrated_to_device_bytes: int = 0
    migrated_to_host_bytes: int = 0
    evicted_bytes: int = 0

    @property
    def total_migrated_bytes(self) -> int:
        """Traffic over the interconnect due to migrations."""
        return self.migrated_to_device_bytes + self.migrated_to_host_bytes


class ManagedBuffer:
    """One cudaMallocManaged-style allocation with per-page residency."""

    def __init__(self, size_bytes: int, name: str = "") -> None:
        if size_bytes <= 0:
            raise ValueError(f"buffer size must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self.name = name
        self.npages = -(-size_bytes // PAGE_SIZE)
        #: True = page currently resident in device memory.
        self.on_device = np.zeros(self.npages, dtype=bool)
        #: Populated (ever touched) pages; untouched pages migrate free.
        self.populated = np.zeros(self.npages, dtype=bool)

    def device_resident_bytes(self) -> int:
        """Bytes currently occupying device memory."""
        return int(self.on_device.sum()) * PAGE_SIZE

    def __repr__(self) -> str:
        return (
            f"ManagedBuffer({self.name or 'anon'}, {self.size_bytes} B, "
            f"{int(self.on_device.sum())}/{self.npages} on device)"
        )


class ExplicitDeviceBuffer:
    """A plain device allocation (the explicit model's hipMalloc)."""

    def __init__(self, size_bytes: int, name: str = "") -> None:
        self.size_bytes = size_bytes
        self.name = name


class UVMSystem:
    """A discrete GPU + host with software-managed unified memory."""

    def __init__(self, config: Optional[UVMConfig] = None) -> None:
        self.config = config if config is not None else default_uvm_config()
        self.clock = SimClock()
        self.counters = UVMCounters()
        self._managed: List[ManagedBuffer] = []
        self._explicit_device_bytes = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def malloc_managed(self, size_bytes: int, name: str = "") -> ManagedBuffer:
        """cudaMallocManaged: pages materialise host-side on first touch."""
        buffer = ManagedBuffer(size_bytes, name)
        self._managed.append(buffer)
        return buffer

    def device_malloc(self, size_bytes: int, name: str = "") -> ExplicitDeviceBuffer:
        """Explicit device allocation; fails beyond device capacity."""
        if (
            self._explicit_device_bytes + size_bytes
            > self.config.device_memory_bytes
        ):
            raise DeviceOutOfMemoryError(
                f"device allocation of {size_bytes} B exceeds "
                f"{self.config.device_memory_bytes} B device memory"
            )
        self._explicit_device_bytes += size_bytes
        return ExplicitDeviceBuffer(size_bytes, name)

    def device_free(self, buffer: ExplicitDeviceBuffer) -> None:
        """Release an explicit device allocation."""
        self._explicit_device_bytes -= buffer.size_bytes

    def device_bytes_in_use(self) -> int:
        """Device memory consumed by managed residency + explicit buffers."""
        managed = sum(b.device_resident_bytes() for b in self._managed)
        return managed + self._explicit_device_bytes

    # ------------------------------------------------------------------
    # Explicit copies (the baseline the unified model competes with)
    # ------------------------------------------------------------------

    def memcpy(self, nbytes: int) -> float:
        """One explicit host<->device copy over the link; returns ns."""
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        duration = nbytes / self.config.link_bandwidth_bytes_per_s * 1e9
        self.clock.advance(duration)
        return duration

    # ------------------------------------------------------------------
    # Managed access (fault + migration machinery)
    # ------------------------------------------------------------------

    def gpu_access(
        self, buffer: ManagedBuffer, offset_bytes: int = 0,
        size_bytes: Optional[int] = None,
    ) -> float:
        """GPU touches a managed range: migrate what is not on device.

        Faults are serviced in driver batches; populated pages move over
        the link, never-touched pages are simply mapped device-side
        (first touch on GPU).  Returns the added fault+migration time.
        """
        first, count = self._page_range(buffer, offset_bytes, size_bytes)
        sl = slice(first, first + count)
        needed = ~buffer.on_device[sl]
        n_needed = int(needed.sum())
        if n_needed == 0:
            return 0.0
        migrate_pages = int((needed & buffer.populated[sl]).sum())

        self._ensure_device_room(n_needed, exclude=buffer)

        cfg = self.config
        batches = -(-n_needed // cfg.gpu_fault_batch_pages)
        time_ns = batches * cfg.gpu_fault_batch_ns
        time_ns += migrate_pages * (
            PAGE_SIZE / cfg.link_bandwidth_bytes_per_s * 1e9
            + cfg.migration_per_page_ns
        )
        buffer.on_device[sl] = True
        buffer.populated[sl] = True
        self.counters.gpu_fault_batches += batches
        self.counters.gpu_faulted_pages += n_needed
        self.counters.migrated_to_device_bytes += migrate_pages * PAGE_SIZE
        time_ns += self._self_evict(buffer)
        self.clock.advance(time_ns)
        return time_ns

    def _self_evict(self, buffer: ManagedBuffer) -> float:
        """Shed this buffer's own oldest pages past device capacity.

        A single working set larger than device memory streams through
        it: pages migrate in at the head and evict at the tail, so the
        next pass re-faults everything (the oversubscription thrash the
        paper's UVM references analyse).
        """
        over = self.device_bytes_in_use() // PAGE_SIZE - self.config.device_pages
        if over <= 0:
            return 0.0
        resident = np.flatnonzero(buffer.on_device)
        take = resident[: min(len(resident), over)]
        if take.size == 0:
            raise DeviceOutOfMemoryError("working set exceeds device + evictable")
        buffer.on_device[take] = False
        self.counters.evicted_bytes += int(take.size) * PAGE_SIZE
        return (
            take.size * PAGE_SIZE
            / self.config.remote_access_bandwidth_bytes_per_s * 1e9
        )

    def cpu_access(
        self, buffer: ManagedBuffer, offset_bytes: int = 0,
        size_bytes: Optional[int] = None,
    ) -> float:
        """CPU touches a managed range: migrate device pages back."""
        first, count = self._page_range(buffer, offset_bytes, size_bytes)
        sl = slice(first, first + count)
        on_device = buffer.on_device[sl]
        n_back = int(on_device.sum())
        cfg = self.config
        time_ns = 0.0
        if n_back:
            time_ns += n_back * (
                PAGE_SIZE / cfg.link_bandwidth_bytes_per_s * 1e9
                + cfg.migration_per_page_ns
            )
            # CPU faults are per-migration-chunk events.
            chunk_pages = UVM_MIGRATION_CHUNK_BYTES // PAGE_SIZE
            faults = -(-n_back // chunk_pages)
            time_ns += faults * cfg.cpu_fault_ns
            self.counters.cpu_faults += faults
            self.counters.migrated_to_host_bytes += n_back * PAGE_SIZE
        buffer.on_device[sl] = False
        buffer.populated[sl] = True
        self.clock.advance(time_ns)
        return time_ns

    def prefetch(self, buffer: ManagedBuffer, to: Location) -> float:
        """cudaMemPrefetchAsync: bulk migration without fault stalls."""
        cfg = self.config
        if to == "device":
            pages = int((~buffer.on_device & buffer.populated).sum())
            self._ensure_device_room(
                int((~buffer.on_device).sum()), exclude=buffer
            )
            buffer.on_device[:] = True
            self.counters.migrated_to_device_bytes += pages * PAGE_SIZE
            self._self_evict(buffer)
        elif to == "host":
            pages = int(buffer.on_device.sum())
            buffer.on_device[:] = False
            self.counters.migrated_to_host_bytes += pages * PAGE_SIZE
        else:
            raise ValueError(f"unknown prefetch target {to!r}")
        buffer.populated[:] = True
        nbytes = pages * PAGE_SIZE
        chunks = -(-max(nbytes, 1) // UVM_MIGRATION_CHUNK_BYTES)
        time_ns = (
            nbytes / cfg.link_bandwidth_bytes_per_s * 1e9
            + chunks * cfg.prefetch_chunk_ns
        )
        self.clock.advance(time_ns)
        return time_ns

    def _ensure_device_room(self, pages_needed: int, exclude: ManagedBuffer) -> None:
        """Evict LRU-ish pages of other buffers when the device is full.

        This is the oversubscription support UPM lacks (Section 2.1):
        the working set may exceed device memory at the price of
        eviction traffic.
        """
        capacity = self.config.device_pages
        in_use = self.device_bytes_in_use() // PAGE_SIZE
        overflow = in_use + pages_needed - capacity
        if overflow <= 0:
            return
        for victim in self._managed:
            if overflow <= 0:
                break
            if victim is exclude:
                continue
            resident = np.flatnonzero(victim.on_device)
            take = resident[: min(len(resident), overflow)]
            if take.size == 0:
                continue
            victim.on_device[take] = False
            self.counters.evicted_bytes += int(take.size) * PAGE_SIZE
            self.clock.advance(
                take.size * PAGE_SIZE
                / self.config.remote_access_bandwidth_bytes_per_s * 1e9
            )
            overflow -= int(take.size)
        # Any remaining overflow is shed from the accessed buffer itself
        # as it streams (see _self_evict).

    @staticmethod
    def _page_range(buffer: ManagedBuffer, offset: int, size: Optional[int]):
        if size is None:
            size = buffer.size_bytes - offset
        if offset < 0 or size <= 0 or offset + size > buffer.size_bytes:
            raise ValueError("byte range escapes managed buffer")
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        return first, last - first + 1

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def run_gpu_kernel(
        self,
        buffers: Dict[ManagedBuffer, int],
        compute_ns: float = 0.0,
        prefetched: bool = False,
    ) -> float:
        """Run a GPU kernel reading/writing managed *buffers*.

        *buffers* maps each buffer to the bytes the kernel streams from
        it.  Unless *prefetched*, non-resident pages fault and migrate
        inline — the UVM overhead the paper's Fig.-11-style comparisons
        highlight.  Returns the kernel duration (the clock advances).
        """
        start = self.clock.now_ns
        self.clock.advance(self.config.kernel_launch_ns)
        for buffer in buffers:
            if not prefetched:
                self.gpu_access(buffer)
        stream_bytes = sum(buffers.values())
        memory_ns = stream_bytes / self.config.device_bandwidth_bytes_per_s * 1e9
        self.clock.advance(max(memory_ns, compute_ns))
        return self.clock.now_ns - start

    def run_cpu_kernel(
        self, buffers: Dict[ManagedBuffer, int], compute_ns: float = 0.0
    ) -> float:
        """Run a CPU phase over managed buffers (migrates device pages back)."""
        start = self.clock.now_ns
        for buffer in buffers:
            self.cpu_access(buffer)
        stream_bytes = sum(buffers.values())
        memory_ns = stream_bytes / self.config.host_bandwidth_bytes_per_s * 1e9
        self.clock.advance(max(memory_ns, compute_ns))
        return self.clock.now_ns - start
