"""Three-way memory-model comparison: explicit vs UVM vs UPM.

Runs the same alternating CPU/GPU pipeline — the access pattern that
punishes software unified memory hardest — under the three models the
paper situates itself between:

* **explicit / discrete** — host+device buffers, a hipMemcpy each way
  per iteration (the traditional high-performance baseline);
* **UVM / discrete** — managed memory; each hand-over faults and
  migrates the working set over the link (the 2-3x degradation the
  paper cites from [14]);
* **UPM / MI300A** — one unified buffer on the simulated APU; the
  hand-over is free.

The result quantifies the paper's thesis: hardware unification turns
the unified *programming model* from a performance sacrifice into the
natural default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from ..runtime.apu import make_apu
from ..runtime.kernels import BufferAccess, KernelEngine, KernelSpec
from .config import UVMConfig
from .system import UVMSystem


@dataclass(frozen=True)
class ModelResult:
    """Wall time and movement volume of one memory model."""

    model: str
    time_ms: float
    moved_bytes: int

    def relative_to(self, baseline: "ModelResult") -> float:
        """Slowdown versus *baseline* (>1 = slower)."""
        return self.time_ms / baseline.time_ms


def run_explicit_discrete(
    working_set_bytes: int, iterations: int,
    config: Optional[UVMConfig] = None,
) -> ModelResult:
    """Explicit model on the discrete GPU: copy over, compute, copy back."""
    system = UVMSystem(config)
    system.device_malloc(working_set_bytes, "d_data")
    start = system.clock.now_ns
    moved = 0
    for _ in range(iterations):
        # CPU updates the host copy...
        system.clock.advance(
            working_set_bytes / system.config.host_bandwidth_bytes_per_s * 1e9
        )
        # ...ships it to the device, computes, ships results back.
        system.memcpy(working_set_bytes)
        system.clock.advance(
            working_set_bytes / system.config.device_bandwidth_bytes_per_s * 1e9
            + system.config.kernel_launch_ns
        )
        system.memcpy(working_set_bytes)
        moved += 2 * working_set_bytes
    return ModelResult(
        "explicit/discrete", (system.clock.now_ns - start) / 1e6, moved
    )


def run_uvm(
    working_set_bytes: int, iterations: int,
    config: Optional[UVMConfig] = None,
    use_prefetch: bool = False,
) -> ModelResult:
    """Unified model on the discrete GPU: fault-driven migration."""
    system = UVMSystem(config)
    buffer = system.malloc_managed(working_set_bytes, "managed")
    start = system.clock.now_ns
    for _ in range(iterations):
        system.run_cpu_kernel({buffer: working_set_bytes})
        if use_prefetch:
            system.prefetch(buffer, "device")
            system.run_gpu_kernel({buffer: working_set_bytes}, prefetched=True)
        else:
            system.run_gpu_kernel({buffer: working_set_bytes})
    moved = system.counters.total_migrated_bytes
    label = "uvm+prefetch/discrete" if use_prefetch else "uvm/discrete"
    return ModelResult(label, (system.clock.now_ns - start) / 1e6, moved)


def run_upm(
    working_set_bytes: int, iterations: int, memory_gib: Optional[int] = None,
) -> ModelResult:
    """Unified model on the simulated MI300A: no movement at all."""
    if memory_gib is None:
        memory_gib = max(2, (working_set_bytes >> 30) * 2 + 1)
    apu = make_apu(memory_gib, xnack=True)
    engine = KernelEngine(apu)
    buffer = apu.memory.hip_malloc(working_set_bytes, "unified")
    start = apu.clock.now_ns
    for _ in range(iterations):
        engine.run_cpu(
            KernelSpec("update", [BufferAccess(buffer, "readwrite")]),
            threads=apu.cpu.cores,
        )
        engine.run_gpu(
            KernelSpec("compute", [BufferAccess(buffer, "read")])
        )
        apu.streams.device_synchronize()
    return ModelResult("upm/MI300A", (apu.clock.now_ns - start) / 1e6, 0)


def three_way_comparison(
    working_set_bytes: int = 1 << 30, iterations: int = 10,
) -> dict[str, ModelResult]:
    """All three models on the alternating CPU/GPU pipeline."""
    explicit = run_explicit_discrete(working_set_bytes, iterations)
    uvm = run_uvm(working_set_bytes, iterations)
    uvm_pf = run_uvm(working_set_bytes, iterations, use_prefetch=True)
    upm = run_upm(working_set_bytes, iterations)
    return {
        r.model: r for r in (explicit, uvm, uvm_pf, upm)
    }
