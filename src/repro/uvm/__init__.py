"""Discrete-GPU UVM comparison substrate.

Models the software-unified-memory world (Nvidia-style UVM on a
discrete GPU) that the paper's UPM architecture supersedes, so the
repository can quantify what hardware unification buys: the 2-3x
unified-model penalty of fault-driven page migration disappears.
"""

from .comparison import (
    ModelResult,
    run_explicit_discrete,
    run_upm,
    run_uvm,
    three_way_comparison,
)
from .config import UVMConfig, default_uvm_config
from .system import (
    DeviceOutOfMemoryError,
    ExplicitDeviceBuffer,
    ManagedBuffer,
    UVMCounters,
    UVMSystem,
)

__all__ = [
    "DeviceOutOfMemoryError",
    "ExplicitDeviceBuffer",
    "ManagedBuffer",
    "ModelResult",
    "UVMConfig",
    "UVMCounters",
    "UVMSystem",
    "default_uvm_config",
    "run_explicit_discrete",
    "run_upm",
    "run_uvm",
    "three_way_comparison",
]
