"""GPU device model: compute organisation and profiler counters.

The MI300A presents its six XCDs as a single GPU device (paper Section
2.2).  This class tracks the device-level execution state the benchmarks
observe: kernel launches, the GPU L1 TLB miss counter that rocprofv3
exposes as ``TCP_UTCL1_TRANSLATION_MISS_sum`` (the paper's proxy for
fragment sizes, Section 3.2), and traffic totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import MI300AConfig


@dataclass
class GPUCounters:
    """Hardware-event counters a profiler can sample."""

    kernels_launched: int = 0
    tlb_misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def snapshot(self) -> "GPUCounters":
        """A copy of the current counter values."""
        return GPUCounters(**self.__dict__)

    def delta(self, earlier: "GPUCounters") -> "GPUCounters":
        """Counters accumulated since *earlier*."""
        return GPUCounters(
            **{k: getattr(self, k) - getattr(earlier, k) for k in self.__dict__}
        )


class GPUDevice:
    """The single logical GPU of one APU."""

    def __init__(self, config: MI300AConfig) -> None:
        self._config = config
        self.counters = GPUCounters()

    @property
    def compute_units(self) -> int:
        """Number of CUs across all XCDs (228 on MI300A)."""
        return self._config.gpu_compute_units

    @property
    def max_resident_threads(self) -> int:
        """Upper bound on concurrently resident threads for the atomics
        benchmark's thread sweep (one 64-thread block per CU)."""
        return (
            self._config.gpu_compute_units
            * self._config.atomics.gpu_threads_per_cu
        )

    def __repr__(self) -> str:
        return f"GPUDevice({self.compute_units} CUs)"


class CPUComplex:
    """The CPU side of the APU: 24 Zen 4 cores over three CCDs."""

    def __init__(self, config: MI300AConfig) -> None:
        self._config = config

    @property
    def cores(self) -> int:
        """Number of CPU cores (24 on MI300A)."""
        return self._config.cpu_cores

    def validate_threads(self, threads: int) -> int:
        """Clamp-and-check a benchmark's thread count."""
        if threads < 1:
            raise ValueError(f"need at least one thread, got {threads}")
        return min(threads, self.cores)

    def __repr__(self) -> str:
        return f"CPUComplex({self.cores} cores)"
