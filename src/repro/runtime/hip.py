"""HIP-like runtime API over the simulated APU.

This facade mirrors the subset of HIP the paper's benchmarks and Rodinia
ports use: memory management (Table 1's allocators), synchronous and
asynchronous copies, kernel launch, streams/events, and device queries.
Function names follow HIP (camelCase) so ported code reads like the
original; everything operates on one :class:`~repro.runtime.apu.APU`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..core.allocators import Allocation, AllocatorKind
from ..core.physical import OutOfMemoryError, TransientAllocationError
from ..hw.hbm import UncorrectableECCError
from ..partition import LogicalDevice, PartitionConfig
from .apu import APU
from .arrays import DeviceArray, Shape
from .kernels import KernelEngine, KernelResult, KernelSpec
from .sdma import (
    SdmaTransferError,
    apply_transfer_faults,
    copy_path,
    memcpy_time_ns,
)
from .stream import Event, Stream, UnrecordedEventError

#: hipMemcpy kind constants (accepted and ignored: UPM has one memory).
hipMemcpyHostToDevice = "H2D"
hipMemcpyDeviceToHost = "D2H"
hipMemcpyDeviceToDevice = "D2D"
hipMemcpyDefault = "default"

#: hipError_t codes the simulator surfaces (string-valued, like the
#: hipGetErrorName view of the enum).
hipSuccess = "hipSuccess"
hipErrorOutOfMemory = "hipErrorOutOfMemory"
hipErrorInvalidValue = "hipErrorInvalidValue"
hipErrorInvalidDevice = "hipErrorInvalidDevice"
hipErrorECCNotCorrectable = "hipErrorECCNotCorrectable"
hipErrorUnknown = "hipErrorUnknown"

#: Bounded retry-with-backoff for transient allocation failures: how
#: many retries, and the first backoff step (doubles per attempt).
ALLOC_RETRY_LIMIT = 4
ALLOC_BACKOFF_NS = 50_000.0

BufferLike = Union[Allocation, DeviceArray]


class HipError(RuntimeError):
    """A HIP API call failed.

    The simulator raises instead of returning error codes, but every
    raise carries the ``hipError_t`` name: machine-readable in
    :attr:`code`, and as the message prefix for humans.  The owning
    runtime also latches the code for the
    :meth:`HipRuntime.hipGetLastError` /
    :meth:`HipRuntime.hipPeekAtLastError` surface.
    """

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        if code is None:
            head = message.split(":", 1)[0].strip()
            code = head if head.startswith("hipError") else hipErrorUnknown
        self.code = code


def _allocation(buffer: BufferLike) -> Allocation:
    if isinstance(buffer, DeviceArray):
        return buffer.allocation
    return buffer


class HipRuntime:
    """The process-level HIP runtime bound to one APU."""

    def __init__(self, apu: APU, sdma_enabled: bool = True) -> None:
        self.apu = apu
        self.sdma_enabled = sdma_enabled
        self._engine = KernelEngine(apu)
        self._current_device = 0
        self._last_error = hipSuccess
        #: Recorded degradation events (allocator downgrade, SDMA→blit
        #: failover).  The chaos harness and tests assert on these.
        self.degradations: list = []

    # ------------------------------------------------------------------
    # Error surface
    # ------------------------------------------------------------------

    def _error(self, code: str, message: str) -> HipError:
        """Build a typed :class:`HipError` and latch it as the last error."""
        self._last_error = code
        return HipError(f"{code}: {message}", code)

    def hipGetLastError(self) -> str:
        """Return and clear the last error code (``hipSuccess`` if clean)."""
        code = self._last_error
        self._last_error = hipSuccess
        return code

    def hipPeekAtLastError(self) -> str:
        """Return the last error code without clearing it."""
        return self._last_error

    def _record_degradation(self, event: str, **data) -> None:
        record = {"event": event, "t_ns": self.apu.clock.now_ns}
        record.update(data)
        self.degradations.append(record)
        plan = self.apu.physical.inject
        if plan is not None:
            plan.note(f"degrade.{event}", **data)

    # ------------------------------------------------------------------
    # Device management (partition-aware enumeration)
    # ------------------------------------------------------------------

    def hipGetDeviceCount(self) -> int:
        """Logical GPU devices visible to this process.

        One in the default SPX mode; the APU's partition mode can raise
        this to three (TPX) or six (CPX), each logical device being a
        subset of the package's XCDs.
        """
        return len(self.apu.logical_devices)

    def hipSetDevice(self, device: int) -> None:
        """Select the logical device subsequent calls operate on."""
        if not 0 <= device < len(self.apu.logical_devices):
            raise self._error(
                hipErrorInvalidDevice,
                f"device {device} out of range "
                f"[0, {len(self.apu.logical_devices)})",
            )
        self._current_device = device

    def hipGetDevice(self) -> int:
        """The currently selected logical device ordinal."""
        return self._current_device

    def hipDeviceGet(self, ordinal: int) -> LogicalDevice:
        """The logical-device handle for *ordinal*."""
        if not 0 <= ordinal < len(self.apu.logical_devices):
            raise self._error(
                hipErrorInvalidDevice,
                f"device {ordinal} out of range "
                f"[0, {len(self.apu.logical_devices)})",
            )
        return self.apu.logical_devices[ordinal]

    def hipGetDeviceProperties(self, device: Optional[int] = None) -> Dict[str, object]:
        """hipDeviceProp_t-style summary of a logical device."""
        handle = self.hipDeviceGet(
            self._current_device if device is None else device
        )
        return {
            "name": handle.name,
            "multiProcessorCount": handle.compute_units,
            "totalGlobalMem": handle.memory_capacity_bytes,
            "l2CacheSize": handle.l2_slices * 4 * 1024 * 1024,
            "isApu": True,
        }

    def _frame_range(self) -> Optional[Tuple[int, int]]:
        # NPS4 placement: home up-front allocations in the current
        # device's local quadrant (None in NPS1 = whole-pool path).
        return self.apu.placement.frame_range(self._current_device)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def _alloc_with_recovery(
        self,
        attempt,
        *,
        size: int,
        name: str,
        degraded=None,
    ) -> Allocation:
        """Run an allocation attempt through the recovery ladder.

        Transient failures retry up to :data:`ALLOC_RETRY_LIMIT` times
        with exponential backoff (each retry advances the simulated
        clock); a hard or persistent failure gets one
        defragment-then-retry; pinned allocators may then fall back to a
        *degraded* scattered-frame layout, recording the downgrade.
        Only when the ladder is exhausted does the call surface
        ``hipErrorOutOfMemory``.
        """
        plan = self.apu.physical.inject
        retries = 0
        defragged = False
        while True:
            try:
                return attempt()
            except TransientAllocationError as failure:
                if retries < ALLOC_RETRY_LIMIT:
                    retries += 1
                    backoff = ALLOC_BACKOFF_NS * 2 ** (retries - 1)
                    self.apu.clock.advance(backoff)
                    if plan is not None:
                        plan.note(
                            "recover.alloc.retry",
                            name=name,
                            attempt=retries,
                            backoff_ns=backoff,
                        )
                    continue
                last = failure
            except OutOfMemoryError as failure:
                last = failure
            if not defragged:
                defragged = True
                reclaimed = self.apu.physical.defragment()
                if plan is not None:
                    plan.note(
                        "recover.alloc.defrag",
                        name=name,
                        reclaimed_frames=reclaimed,
                    )
                if reclaimed:
                    continue
            if degraded is not None:
                fallback, degraded = degraded, None
                try:
                    allocation = fallback()
                except OutOfMemoryError:
                    pass
                else:
                    self._record_degradation(
                        "alloc.scattered-fallback", name=name, size_bytes=size
                    )
                    return allocation
            raise self._error(hipErrorOutOfMemory, f"{name}: {last}") from last

    def hipMalloc(self, nbytes: int, name: str = "hipMalloc") -> Allocation:
        """Allocate device-style memory (up-front, contiguous).

        Hardened: transient failures retry with backoff and hard
        failures trigger one defragment-then-retry, but hipMalloc never
        downgrades to a scattered layout — device code depends on its
        large fragments — so persistent shortage surfaces as
        ``hipErrorOutOfMemory``.
        """
        frame_range = self._frame_range()
        return self._alloc_with_recovery(
            lambda: self.apu.memory.hip_malloc(
                nbytes, name=name, frame_range=frame_range
            ),
            size=nbytes,
            name=name,
        )

    def hipHostMalloc(self, nbytes: int, name: str = "hipHostMalloc") -> Allocation:
        """Allocate page-locked host-style memory (up-front, pinned).

        Under unrecoverable pressure the runtime downgrades to pinned
        scattered frames (pageable-style layout) and records the
        degradation rather than failing the call.
        """
        frame_range = self._frame_range()
        return self._alloc_with_recovery(
            lambda: self.apu.memory.hip_host_malloc(
                nbytes, name=name, frame_range=frame_range
            ),
            size=nbytes,
            name=name,
            degraded=lambda: self.apu.memory.up_front_degraded(
                nbytes, name, AllocatorKind.HIP_HOST_MALLOC, frame_range
            ),
        )

    def hipMallocManaged(self, nbytes: int, name: str = "managed") -> Allocation:
        """Allocate managed memory (mode depends on XNACK, Table 1).

        The XNACK=0 up-front path can downgrade to pinned scattered
        frames under pressure, like :meth:`hipHostMalloc`; the XNACK=1
        path is on-demand and allocates nothing up-front.
        """
        frame_range = self._frame_range()
        degraded = None
        if not self.apu.memory.xnack_enabled:
            degraded = lambda: self.apu.memory.up_front_degraded(  # noqa: E731
                nbytes, name, AllocatorKind.HIP_MALLOC_MANAGED, frame_range
            )
        return self._alloc_with_recovery(
            lambda: self.apu.memory.hip_malloc_managed(
                nbytes, name=name, frame_range=frame_range
            ),
            size=nbytes,
            name=name,
            degraded=degraded,
        )

    def malloc(self, nbytes: int, name: str = "malloc") -> Allocation:
        """libc malloc (exposed here for side-by-side benchmarks)."""
        return self.apu.memory.malloc(nbytes, name=name)

    def hipHostRegister(self, buffer: BufferLike) -> Allocation:
        """Pin an existing malloc'd range and map it for the GPU."""
        return self.apu.memory.host_register(_allocation(buffer))

    def hipFree(self, buffer: BufferLike) -> None:
        """Free any allocation (dispatches the right deallocator).

        Double frees and foreign buffers surface as
        ``hipErrorInvalidValue`` instead of corrupting the pool.
        """
        try:
            self.apu.memory.free(_allocation(buffer))
        except ValueError as failure:
            raise self._error(hipErrorInvalidValue, str(failure)) from failure

    def hipMemGetInfo(self, device: Optional[int] = None) -> Tuple[int, int]:
        """(free, total) as HIP reports it — hipMalloc visibility only.

        With a partitioned APU the figures are per logical device:
        *total* is the device's visible stack capacity and *used* counts
        only hipMalloc frames homed there (see
        :func:`repro.core.meminfo.hip_mem_get_info_device`).  *device*
        defaults to the current one.
        """
        from ..core.meminfo import hip_mem_get_info, hip_mem_get_info_device

        if device is None:
            device = self._current_device
        if device == 0 and self.apu.partition.numa_domains == 1:
            return hip_mem_get_info(self.apu.memory, self.apu.physical)
        return hip_mem_get_info_device(
            self.apu.memory,
            self.apu.physical,
            self.apu.hbm_map,
            self.hipDeviceGet(device),
        )

    # Array conveniences -------------------------------------------------

    def array(
        self,
        shape: Shape,
        dtype: np.dtype | str = np.float32,
        allocator: str = "hipMalloc",
        name: str = "",
    ) -> DeviceArray:
        """Allocate a typed array through a named allocator.

        *allocator* is one of ``malloc``, ``hipMalloc``, ``hipHostMalloc``,
        ``hipMallocManaged``, ``malloc+register``, ``managed_static``.
        """
        shape_tuple = (shape,) if isinstance(shape, int) else tuple(shape)
        nbytes = int(np.prod(shape_tuple)) * np.dtype(dtype).itemsize
        nbytes = max(nbytes, 1)
        mem = self.apu.memory
        label = name or allocator
        # The HIP-named allocators go through the hardened entry points so
        # typed arrays get the same recovery ladder as raw allocations.
        if allocator == "malloc":
            alloc = mem.malloc(nbytes, name=label)
        elif allocator == "hipMalloc":
            alloc = self.hipMalloc(nbytes, name=label)
        elif allocator == "hipHostMalloc":
            alloc = self.hipHostMalloc(nbytes, name=label)
        elif allocator == "hipMallocManaged":
            alloc = self.hipMallocManaged(nbytes, name=label)
        elif allocator == "malloc+register":
            alloc = mem.host_register(mem.malloc(nbytes, name=label))
        elif allocator == "managed_static":
            alloc = mem.managed_static(nbytes, name=label)
        else:
            raise self._error(
                hipErrorInvalidValue, f"unknown allocator {allocator!r}"
            )
        return DeviceArray(alloc, shape, dtype)

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------

    def hipMemcpy(
        self,
        dst: BufferLike,
        src: BufferLike,
        nbytes: Optional[int] = None,
        kind: str = hipMemcpyDefault,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> None:
        """Synchronous copy: blocks the host until the copy completes.

        On UPM this is *legacy* data movement (Section 4.3) — the data
        does not need to move, but ported code still pays for it.  The
        offsets support the partial-transfer pipelines of Section 3.3.
        """
        del kind  # one physical memory: the kind flag is advisory
        dst_alloc, src_alloc = _allocation(dst), _allocation(src)
        if nbytes is None:
            nbytes = min(dst_alloc.size_bytes, src_alloc.size_bytes)
            if isinstance(dst, DeviceArray) and isinstance(src, DeviceArray):
                nbytes = min(dst.nbytes, src.nbytes)
        if (
            dst_offset + nbytes > dst_alloc.size_bytes
            or src_offset + nbytes > src_alloc.size_bytes
        ):
            raise self._error(hipErrorInvalidValue, "copy exceeds buffer size")
        # Synchronous semantics: drain the default stream first.
        self.apu.streams.default.synchronize()
        self._resolve_copy_faults(dst_alloc, src_alloc, nbytes, dst_offset, src_offset)
        duration = self._copy_duration(dst_alloc, src_alloc, nbytes)
        self._emit_memcpy(
            dst_alloc, src_alloc, nbytes, dst_offset, src_offset,
            is_async=False, stream=None,
        )
        self.apu.clock.advance(duration)
        self._move_payload(dst, src, nbytes, dst_offset, src_offset)

    def hipMemcpyAsync(
        self,
        dst: BufferLike,
        src: BufferLike,
        nbytes: Optional[int] = None,
        stream: Optional[Stream] = None,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> None:
        """Asynchronous copy on a stream."""
        dst_alloc, src_alloc = _allocation(dst), _allocation(src)
        if nbytes is None:
            nbytes = min(dst_alloc.size_bytes, src_alloc.size_bytes)
        self._resolve_copy_faults(dst_alloc, src_alloc, nbytes, dst_offset, src_offset)
        duration = self._copy_duration(dst_alloc, src_alloc, nbytes)
        resolved = self.apu.streams.resolve(stream)
        resolved.enqueue(duration)
        self._emit_memcpy(
            dst_alloc, src_alloc, nbytes, dst_offset, src_offset,
            is_async=True, stream=resolved,
        )
        self._move_payload(dst, src, nbytes, dst_offset, src_offset)

    def _emit_memcpy(
        self,
        dst: Allocation,
        src: Allocation,
        nbytes: int,
        dst_offset: int,
        src_offset: int,
        is_async: bool,
        stream: Optional[Stream],
    ) -> None:
        trace = self.apu.trace
        if trace is None:
            return
        trace.emit(
            "memcpy",
            dst=trace.buffer_uid(dst),
            src=trace.buffer_uid(src),
            nbytes=nbytes,
            dst_offset=dst_offset,
            src_offset=src_offset,
            path=copy_path(dst, src, self.sdma_enabled),
            is_async=is_async,
            stream=stream.uid if stream is not None else None,
        )

    def _resolve_copy_faults(
        self,
        dst: Allocation,
        src: Allocation,
        nbytes: int,
        dst_offset: int,
        src_offset: int,
    ) -> None:
        # The copy engine needs both ranges resident; the runtime touches
        # pageable memory from the CPU side before programming the DMA.
        if nbytes <= 0:
            return
        self.apu.touch(src, "cpu", offset_bytes=src_offset, size_bytes=nbytes)
        self.apu.touch(dst, "cpu", offset_bytes=dst_offset, size_bytes=nbytes)

    def _copy_duration(
        self, dst: Allocation, src: Allocation, nbytes: int
    ) -> float:
        """Simulated copy duration, with injected SDMA faults applied.

        A retryable SDMA engine failure re-issues the copy on the blit
        path (the ``HSA_ENABLE_SDMA=0`` shader-kernel fallback) and
        records the degradation; an engine abort surfaces as
        ``hipErrorUnknown``.
        """
        duration = memcpy_time_ns(
            self.apu.config, dst, src, nbytes, self.sdma_enabled
        )
        path = copy_path(dst, src, self.sdma_enabled)
        plan = self.apu.physical.inject
        try:
            return apply_transfer_faults(plan, nbytes, path, duration)
        except SdmaTransferError as failure:
            if not failure.retryable:
                raise self._error(hipErrorUnknown, str(failure)) from failure
            fallback = memcpy_time_ns(
                self.apu.config, dst, src, nbytes, sdma_enabled=False
            )
            self._record_degradation(
                "memcpy.blit-fallback", nbytes=nbytes, cause=str(failure)
            )
            # The failed SDMA attempt consumed engine time before erroring.
            return duration + fallback

    def _move_payload(
        self,
        dst: BufferLike,
        src: BufferLike,
        nbytes: int,
        dst_offset: int = 0,
        src_offset: int = 0,
    ) -> None:
        if not (isinstance(dst, DeviceArray) and isinstance(src, DeviceArray)):
            return
        if dst_offset == 0 and src_offset == 0:
            full = nbytes == dst.nbytes == src.nbytes
            dst.copy_from(src, None if full else nbytes)
            return
        item = dst.dtype.itemsize
        if dst_offset % item or src_offset % item or nbytes % item:
            raise self._error(hipErrorInvalidValue, "unaligned partial copy")
        count = nbytes // item
        dst.np.reshape(-1)[dst_offset // item : dst_offset // item + count] = (
            src.np.reshape(-1)[src_offset // item : src_offset // item + count]
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def launchKernel(
        self, spec: KernelSpec, stream: Optional[Stream] = None
    ) -> KernelResult:
        """Launch a declared kernel on the GPU (asynchronous).

        An injected uncorrectable HBM frame error during the kernel's
        accesses surfaces as ``hipErrorECCNotCorrectable``.
        """
        try:
            return self._engine.run_gpu(spec, stream)
        except UncorrectableECCError as failure:
            raise self._error(
                hipErrorECCNotCorrectable, str(failure)
            ) from failure

    def runCpuKernel(self, spec: KernelSpec, threads: int = 1) -> KernelResult:
        """Run a declared kernel on CPU threads (synchronous)."""
        return self._engine.run_cpu(spec, threads)

    # ------------------------------------------------------------------
    # Streams, events, synchronisation
    # ------------------------------------------------------------------

    def hipStreamCreate(self, name: str = "") -> Stream:
        """Create a new stream."""
        return self.apu.streams.create(name)

    def hipEventCreate(self, name: str = "") -> Event:
        """Create an event."""
        return Event(name)

    def hipEventRecord(self, event: Event, stream: Optional[Stream] = None) -> None:
        """Record an event on a stream."""
        self.apu.streams.resolve(stream).record_event(event)

    def hipStreamWaitEvent(self, stream: Optional[Stream], event: Event) -> None:
        """Make a stream wait for an event."""
        self.apu.streams.resolve(stream).wait_event(event)

    def hipEventSynchronize(self, event: Event) -> None:
        """Block the host until the event's point on its stream passes.

        Raises :class:`~repro.runtime.stream.UnrecordedEventError` for an
        event that was never recorded (real HIP would spin forever or
        return ``hipErrorInvalidResourceHandle``).
        """
        if event.timestamp_ns is None:
            raise UnrecordedEventError(
                f"hipEventSynchronize on unrecorded event {event.name!r}: "
                "record the event before blocking on it"
            )
        self.apu.clock.advance_to(event.timestamp_ns)
        if self.apu.trace is not None:
            self.apu.trace.emit(
                "event_host_sync", event=self.apu.trace.event_uid(event)
            )

    def hipStreamSynchronize(self, stream: Optional[Stream] = None) -> None:
        """Block the host until a stream drains."""
        self.apu.streams.resolve(stream).synchronize()

    def hipDeviceSynchronize(self) -> None:
        """Block the host until all streams drain."""
        self.apu.streams.device_synchronize()


def make_runtime(
    memory_gib: Optional[int] = None,
    xnack: bool = False,
    sdma_enabled: bool = True,
    seed: int = 0x1300A,
    partition: Optional[PartitionConfig] = None,
    trace: bool = False,
    inject=None,
) -> HipRuntime:
    """Build an APU and its HIP runtime in one call.

    With ``trace=True`` the APU records an event log for the hipsan
    sanitizer (:func:`repro.analyze.analyze_runtime`).  *inject* attaches
    an :class:`~repro.inject.InjectionPlan` to the APU's fault sites.
    """
    from .apu import make_apu

    return HipRuntime(
        make_apu(
            memory_gib, xnack=xnack, seed=seed, partition=partition,
            trace=trace, inject=inject,
        ),
        sdma_enabled,
    )
