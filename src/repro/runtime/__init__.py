"""HIP-like runtime over the simulated MI300A APU.

:class:`~repro.runtime.apu.APU` wires all subsystems together;
:class:`~repro.runtime.hip.HipRuntime` exposes the HIP API surface the
paper's benchmarks and ported applications use.
"""

from .apu import APU, make_apu
from .arrays import DeviceArray
from .device import CPUComplex, GPUCounters, GPUDevice
from .hip import (
    ALLOC_BACKOFF_NS,
    ALLOC_RETRY_LIMIT,
    HipError,
    HipRuntime,
    hipErrorECCNotCorrectable,
    hipErrorInvalidDevice,
    hipErrorInvalidValue,
    hipErrorOutOfMemory,
    hipErrorUnknown,
    hipMemcpyDefault,
    hipMemcpyDeviceToDevice,
    hipMemcpyDeviceToHost,
    hipMemcpyHostToDevice,
    hipSuccess,
    make_runtime,
)
from .kernels import (
    BufferAccess,
    KERNEL_LAUNCH_OVERHEAD_NS,
    KernelEngine,
    KernelResult,
    KernelSpec,
)
from .sdma import (
    SdmaTransferError,
    copy_path,
    memcpy_bandwidth_bytes_per_s,
    memcpy_time_ns,
)
from .stream import Event, Stream, StreamRegistry, UnrecordedEventError

__all__ = [
    "ALLOC_BACKOFF_NS",
    "ALLOC_RETRY_LIMIT",
    "APU",
    "BufferAccess",
    "CPUComplex",
    "DeviceArray",
    "Event",
    "GPUCounters",
    "GPUDevice",
    "HipError",
    "HipRuntime",
    "KERNEL_LAUNCH_OVERHEAD_NS",
    "KernelEngine",
    "KernelResult",
    "KernelSpec",
    "SdmaTransferError",
    "Stream",
    "StreamRegistry",
    "UnrecordedEventError",
    "copy_path",
    "hipErrorECCNotCorrectable",
    "hipErrorInvalidDevice",
    "hipErrorInvalidValue",
    "hipErrorOutOfMemory",
    "hipErrorUnknown",
    "hipMemcpyDefault",
    "hipMemcpyDeviceToDevice",
    "hipMemcpyDeviceToHost",
    "hipMemcpyHostToDevice",
    "hipSuccess",
    "make_apu",
    "make_runtime",
    "memcpy_bandwidth_bytes_per_s",
    "memcpy_time_ns",
]
