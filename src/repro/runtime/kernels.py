"""Kernel execution engine.

Kernels in this simulator are *declared*: a :class:`KernelSpec` lists the
buffers a kernel touches, how (streaming vs latency-bound, read vs
write, how many passes), plus any pure-compute time.  Launching a kernel

1. resolves page faults for every accessed range (GPU faults obey XNACK
   semantics and may be fatal),
2. charges GPU L1 TLB misses to the rocprof counter using the
   fragment-aware streaming model (the Fig. 9 observable),
3. computes the kernel duration from the bandwidth/latency models, and
4. schedules the duration on a stream (asynchronous, like real HIP) or
   advances the host clock (CPU execution).

Actual data transformation is done by the caller with numpy — the engine
only accounts for time and hardware events, so applications stay
numerically real while their performance comes from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

from ..core.allocators import Allocation
from ..core.tlb import streaming_tlb_misses
from ..perf.bandwidth import (
    cpu_stream_bandwidth,
    gpu_stream_bandwidth,
    stream_time_ns,
)
from ..perf.latency import cpu_chase_latency_ns, gpu_chase_latency_ns
from .apu import APU
from .stream import Stream

AccessMode = Literal["read", "write", "readwrite"]
AccessPattern = Literal["stream", "latency", "touch"]

#: Fixed kernel-launch overhead (driver submit + dispatch), ns.
KERNEL_LAUNCH_OVERHEAD_NS = 2_000.0
#: Memory-level parallelism of latency-bound GPU access streams: how many
#: independent chases the scheduler keeps in flight per kernel.
GPU_LATENCY_MLP = 64.0


@dataclass
class BufferAccess:
    """One buffer's access descriptor within a kernel.

    Attributes:
        allocation: the buffer being accessed.
        mode: read, write, or readwrite (readwrite counts bytes twice).
        pattern: ``stream`` for sequential bulk access (bandwidth-bound),
            ``latency`` for dependent/random access (latency-bound),
            ``touch`` for one access per page (fault cost only — used by
            the page-fault benchmark).
        offset_bytes / size_bytes: sub-range accessed (whole buffer by
            default).
        passes: how many times the range is swept.
        accesses: for ``latency`` patterns, the number of dependent
            accesses (defaults to one per 64 B line).
    """

    allocation: Allocation
    mode: AccessMode = "read"
    pattern: AccessPattern = "stream"
    offset_bytes: int = 0
    size_bytes: Optional[int] = None
    passes: int = 1
    accesses: Optional[int] = None

    @property
    def resolved_size(self) -> int:
        """Bytes covered by this access."""
        if self.size_bytes is not None:
            return self.size_bytes
        return self.allocation.size_bytes - self.offset_bytes

    @property
    def bytes_moved(self) -> int:
        """Total bytes transferred by this access across all passes."""
        factor = 2 if self.mode == "readwrite" else 1
        return self.resolved_size * self.passes * factor


@dataclass
class KernelSpec:
    """A declared kernel: accesses plus pure compute time."""

    name: str
    accesses: List[BufferAccess] = field(default_factory=list)
    compute_ns: float = 0.0
    threads: int = 0  # 0 = fill the device / use all requested cores


@dataclass
class KernelResult:
    """Timing breakdown of one kernel execution."""

    name: str
    start_ns: float
    end_ns: float
    fault_ns: float
    memory_ns: float
    compute_ns: float
    tlb_misses: int

    @property
    def duration_ns(self) -> float:
        """Wall duration on the executing timeline."""
        return self.end_ns - self.start_ns


class KernelEngine:
    """Executes :class:`KernelSpec` objects against one APU."""

    def __init__(self, apu: APU) -> None:
        self._apu = apu

    # ------------------------------------------------------------------
    # GPU execution
    # ------------------------------------------------------------------

    def run_gpu(
        self, spec: KernelSpec, stream: Optional[Stream] = None
    ) -> KernelResult:
        """Launch a kernel on the GPU (asynchronous on a stream).

        The host clock advances only by the launch overhead; the kernel
        occupies the stream timeline.  Call ``synchronize`` on the stream
        (or the device) to advance the host to completion.
        """
        apu = self._apu
        stream = apu.streams.resolve(stream)
        apu.clock.advance(KERNEL_LAUNCH_OVERHEAD_NS)

        fault_ns = 0.0
        memory_ns = 0.0
        misses = 0
        concurrency = spec.threads if spec.threads else apu.gpu.compute_units
        for access in spec.accesses:
            report = apu.touch(
                access.allocation,
                "gpu",
                offset_bytes=access.offset_bytes,
                size_bytes=access.resolved_size,
                concurrency=concurrency,
                advance_clock=False,
            )
            fault_ns += report.service_time_ns
            misses += self._gpu_tlb_misses(access)
            memory_ns += self._gpu_memory_time(access)
            # RAS: injected HBM frame errors cost scrub latency here; an
            # uncorrectable error aborts the launch (hipErrorECCNotCorrectable).
            memory_ns += apu.hbm_map.ecc_check(access.resolved_size)

        apu.gpu.counters.kernels_launched += 1
        apu.gpu.counters.tlb_misses += misses
        self._account_gpu_traffic(spec)

        duration = fault_ns + max(memory_ns, spec.compute_ns)
        start, end = stream.enqueue(duration)
        self._emit_kernel(spec, "gpu", stream.uid, start, end)
        return KernelResult(
            spec.name, start, end, fault_ns, memory_ns, spec.compute_ns, misses
        )

    def _emit_kernel(
        self, spec: KernelSpec, device: str, stream_uid, start: float, end: float
    ) -> None:
        trace = self._apu.trace
        if trace is None:
            return
        trace.emit(
            "kernel",
            name=spec.name,
            device=device,
            stream=stream_uid,
            start_ns=start,
            end_ns=end,
            accesses=[
                {
                    "buffer": trace.buffer_uid(access.allocation),
                    "mode": access.mode,
                    "offset": access.offset_bytes,
                    "size": access.resolved_size,
                }
                for access in spec.accesses
            ],
        )

    def _gpu_tlb_misses(self, access: BufferAccess) -> int:
        if access.pattern == "touch":
            return 0
        vma = access.allocation.vma
        first, count = vma.page_range(
            vma.start + access.offset_bytes, access.resolved_size
        )
        exponents = vma.fragment[first : first + count]
        return streaming_tlb_misses(
            exponents,
            passes=access.passes,
            tlb_entries=self._apu.config.gpu_l1_tlb.entries,
            fragment_aware=self._apu.config.gpu_l1_tlb.fragment_aware,
        )

    def _gpu_memory_time(self, access: BufferAccess) -> float:
        apu = self._apu
        if access.pattern == "touch":
            return 0.0
        traits = apu.buffer_traits(access.allocation)
        if access.pattern == "stream":
            bandwidth = gpu_stream_bandwidth(apu.config, traits)
            return stream_time_ns(access.bytes_moved, bandwidth)
        # Latency-bound: dependent accesses, amortised by in-flight chases.
        count = (
            access.accesses
            if access.accesses is not None
            else max(1, access.resolved_size // 64)
        )
        latency = gpu_chase_latency_ns(
            apu.config, access.resolved_size, uncached=traits.uncached
        )
        return count * access.passes * latency / GPU_LATENCY_MLP

    def _account_gpu_traffic(self, spec: KernelSpec) -> None:
        counters = self._apu.gpu.counters
        for access in spec.accesses:
            if access.mode in ("read", "readwrite"):
                counters.bytes_read += access.resolved_size * access.passes
            if access.mode in ("write", "readwrite"):
                counters.bytes_written += access.resolved_size * access.passes

    # ------------------------------------------------------------------
    # CPU execution
    # ------------------------------------------------------------------

    def run_cpu(self, spec: KernelSpec, threads: int = 1) -> KernelResult:
        """Run a kernel on CPU threads (synchronous: advances the clock)."""
        apu = self._apu
        threads = apu.cpu.validate_threads(threads)
        start = apu.clock.now_ns

        fault_ns = 0.0
        memory_ns = 0.0
        for access in spec.accesses:
            report = apu.touch(
                access.allocation,
                "cpu",
                offset_bytes=access.offset_bytes,
                size_bytes=access.resolved_size,
                concurrency=threads,
                advance_clock=False,
            )
            fault_ns += report.service_time_ns
            memory_ns += self._cpu_memory_time(access, threads)

        duration = fault_ns + max(memory_ns, spec.compute_ns)
        apu.clock.advance(duration)
        self._emit_kernel(spec, "cpu", None, start, start + duration)
        return KernelResult(
            spec.name, start, start + duration, fault_ns, memory_ns,
            spec.compute_ns, 0,
        )

    def _cpu_memory_time(self, access: BufferAccess, threads: int) -> float:
        apu = self._apu
        if access.pattern == "touch":
            return 0.0
        traits = apu.buffer_traits(access.allocation)
        if access.pattern == "stream":
            bandwidth = cpu_stream_bandwidth(apu.config, traits, threads)
            return stream_time_ns(access.bytes_moved, bandwidth)
        count = (
            access.accesses
            if access.accesses is not None
            else max(1, access.resolved_size // 64)
        )
        frames = access.allocation.vma.resident_frames()
        latency = cpu_chase_latency_ns(
            apu.config,
            access.resolved_size,
            ic=apu.infinity_cache,
            frames=frames,
            uncached=traits.uncached,
        )
        return count * access.passes * latency / max(1, threads)
