"""Numpy-backed device arrays.

Applications in :mod:`repro.apps` do *real* computation: every buffer is
a numpy array whose contents are transformed by the kernels' host-side
math.  The :class:`DeviceArray` pairs that numpy storage with its
simulated :class:`~repro.core.allocators.Allocation`, so the same object
carries both the data (for correctness) and the memory-system state (for
timing).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..core.allocators import Allocation

Shape = Union[int, Tuple[int, ...]]


class DeviceArray:
    """A typed, shaped view over one simulated allocation."""

    def __init__(
        self, allocation: Allocation, shape: Shape, dtype: np.dtype | str
    ) -> None:
        shape_tuple = (shape,) if isinstance(shape, int) else tuple(shape)
        dtype = np.dtype(dtype)
        needed = int(np.prod(shape_tuple)) * dtype.itemsize
        if needed > allocation.size_bytes:
            raise ValueError(
                f"array of {needed} B does not fit allocation of "
                f"{allocation.size_bytes} B"
            )
        self.allocation = allocation
        self.np = np.zeros(shape_tuple, dtype=dtype)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape."""
        return self.np.shape

    @property
    def dtype(self) -> np.dtype:
        """Element type."""
        return self.np.dtype

    @property
    def nbytes(self) -> int:
        """Bytes of payload data (may be below the allocation size)."""
        return self.np.nbytes

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.np.size

    def fill(self, value: float) -> None:
        """Set every element (host-side initialisation)."""
        self.np[...] = value

    def copy_from(self, other: "DeviceArray", nbytes: Optional[int] = None) -> None:
        """Copy payload bytes from another array (used by hipMemcpy).

        A partial copy (*nbytes*) moves a prefix in flattened order,
        matching the pointer-arithmetic copies of the original codes.
        """
        if nbytes is None:
            if other.np.shape != self.np.shape or other.dtype != self.dtype:
                raise ValueError("full copy requires matching shape and dtype")
            self.np[...] = other.np
            return
        if nbytes % self.dtype.itemsize:
            raise ValueError("partial copy must be element aligned")
        count = nbytes // self.dtype.itemsize
        self.np.reshape(-1)[:count] = other.np.reshape(-1)[:count]

    def __repr__(self) -> str:
        return (
            f"DeviceArray({self.allocation.kind.value}, shape={self.shape}, "
            f"dtype={self.dtype})"
        )
