"""Copy-engine path selection for hipMemcpy (paper Section 4.3).

Legacy applications ported from discrete GPUs still call hipMemcpy
between "host" and "device" buffers even though both live in the same
physical memory on MI300A.  The paper measures three regimes:

* host<->device through the SDMA engines: **58 GB/s** — the default, and
  dramatically below the memory bandwidth, because SDMA transfers from
  non-page-locked buffers are expensive;
* host<->device with SDMA disabled (``HSA_ENABLE_SDMA=0``, copy runs as
  a blit kernel on the shader cores): **850 GB/s**;
* device-to-device (hipMalloc to hipMalloc): **1.9 TB/s**, close to the
  achievable GPU memory bandwidth.

The selector below reproduces those regimes from allocator provenance.
"""

from __future__ import annotations

from ..core.allocators import Allocation, AllocatorKind
from ..hw.config import MI300AConfig

#: Allocator kinds treated as "device memory" by the copy path.
_DEVICE_KINDS = (AllocatorKind.HIP_MALLOC, AllocatorKind.STATIC_DEVICE)

#: Slowdown of an injected SDMA engine stall when the injector does not
#: override it (a contended/misbehaving engine, not a dead one).
STALL_DEFAULT_FACTOR = 8.0


class SdmaTransferError(RuntimeError):
    """An SDMA engine transfer failed.

    *retryable* failures can be recovered by re-issuing the copy as a
    blit kernel on the shader cores (the ``HSA_ENABLE_SDMA=0`` path);
    non-retryable aborts surface to the application as a typed
    ``hipError_t``.
    """

    def __init__(self, message: str, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


def apply_transfer_faults(
    plan, nbytes: int, path: str, duration_ns: float
) -> float:
    """Apply any injected SDMA fault to a computed copy duration.

    Consults *plan* (an :class:`~repro.inject.InjectionPlan`, or None)
    at the ``sdma.transfer`` site — only for copies actually routed to
    the SDMA engines.  ``stall`` multiplies the duration; ``failure``
    raises a retryable :class:`SdmaTransferError` (the runtime falls
    back to the blit path); ``abort`` raises a non-retryable one.
    """
    if plan is None or path != "sdma":
        return duration_ns
    fault = plan.fire("sdma.transfer", nbytes=nbytes, path=path)
    if fault is None:
        return duration_ns
    if fault.kind == "stall":
        factor = float(fault.params.get("factor", STALL_DEFAULT_FACTOR))
        return duration_ns * max(1.0, factor)
    if fault.kind == "failure":
        raise SdmaTransferError(
            f"SDMA engine error during a {nbytes}-byte transfer",
            retryable=True,
        )
    if fault.kind == "abort":
        raise SdmaTransferError(
            f"SDMA engine hang during a {nbytes}-byte transfer "
            "(ring timeout, engine reset)",
            retryable=False,
        )
    raise ValueError(f"sdma.transfer does not understand kind {fault.kind!r}")


def copy_path(
    dst: Allocation, src: Allocation, sdma_enabled: bool = True
) -> str:
    """Which engine a hipMemcpy between two buffers runs on.

    ``"d2d"`` for device-to-device shader copies, ``"sdma"`` for the
    default SDMA engines, ``"blit"`` for the ``HSA_ENABLE_SDMA=0``
    shader-kernel fallback.  The sanitizer's memcpy events carry this
    tag so reports can name the engine involved in a race.
    """
    if src.kind in _DEVICE_KINDS and dst.kind in _DEVICE_KINDS:
        return "d2d"
    return "sdma" if sdma_enabled else "blit"


def memcpy_bandwidth_bytes_per_s(
    config: MI300AConfig,
    dst: Allocation,
    src: Allocation,
    sdma_enabled: bool = True,
) -> float:
    """Achievable hipMemcpy bandwidth between two buffers."""
    model = config.bandwidth
    path = copy_path(dst, src, sdma_enabled)
    if path == "d2d":
        return model.memcpy_d2d_bytes_per_s
    if path == "sdma":
        return model.memcpy_sdma_bytes_per_s
    return model.memcpy_no_sdma_bytes_per_s


def memcpy_time_ns(
    config: MI300AConfig,
    dst: Allocation,
    src: Allocation,
    nbytes: int,
    sdma_enabled: bool = True,
) -> float:
    """Simulated duration of one hipMemcpy call."""
    if nbytes < 0:
        raise ValueError(f"negative copy size {nbytes}")
    if nbytes == 0:
        return _LAUNCH_OVERHEAD_NS
    bandwidth = memcpy_bandwidth_bytes_per_s(config, dst, src, sdma_enabled)
    return _LAUNCH_OVERHEAD_NS + nbytes / bandwidth * 1e9


#: Fixed submission overhead of one copy (driver call + engine doorbell).
_LAUNCH_OVERHEAD_NS = 5_000.0
