"""HIP streams and events over the simulated clock.

Streams let asynchronous work (kernels, async copies) overlap with host
execution: the host enqueues an operation and continues; the operation
occupies the stream's timeline.  This is what makes the paper's
double-buffering port of heartwall meaningful (Section 3.3, "Concurrent
CPU-GPU Access"): CPU pre-processing overlaps the previous iteration's
GPU kernel, synchronised with stream events.

The timeline model: each stream tracks ``available_at_ns``; an enqueued
operation starts at ``max(host_now, available_at)`` and pushes the
stream's horizon forward.  Host-side synchronisation advances the
simulated clock to the relevant horizon.

When the owning APU traces (``trace=True``), every ordering-relevant
action here — event record, event wait, stream/device synchronize —
emits into the :class:`~repro.analyze.events.EventLog` so the hipsan
pass can rebuild the happens-before graph.
"""

from __future__ import annotations

from typing import List, Optional

from ..hw.clock import SimClock


class UnrecordedEventError(RuntimeError):
    """An event that was never recorded was waited on or timed.

    Real HIP returns ``hipErrorInvalidResourceHandle`` /
    ``hipErrorNotReady`` here; silently treating the event as
    timestamp 0 would let later work appear ordered against nothing.
    """


class Event:
    """A HIP event: a recorded point on a stream's timeline."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.timestamp_ns: Optional[float] = None

    @property
    def recorded(self) -> bool:
        """True once the event has been recorded on some stream."""
        return self.timestamp_ns is not None

    def elapsed_since(self, earlier: "Event") -> float:
        """hipEventElapsedTime analogue, in nanoseconds."""
        if self.timestamp_ns is None or earlier.timestamp_ns is None:
            unrecorded = self.name if self.timestamp_ns is None else earlier.name
            raise UnrecordedEventError(
                f"hipEventElapsedTime on unrecorded event {unrecorded!r}: "
                "record both events before timing them"
            )
        return self.timestamp_ns - earlier.timestamp_ns


class Stream:
    """One in-order HIP stream."""

    def __init__(self, clock: SimClock, name: str = "", uid: str = "s0") -> None:
        self._clock = clock
        self.name = name
        self.uid = uid
        self.available_at_ns: float = clock.now_ns
        self.trace = None  # set by the registry when the APU traces

    def enqueue(self, duration_ns: float) -> tuple[float, float]:
        """Schedule an operation of *duration_ns* on this stream.

        Returns its (start, end) simulated times.  The host clock is not
        advanced — enqueueing is asynchronous.
        """
        if duration_ns < 0:
            raise ValueError(f"negative duration {duration_ns}")
        start = max(self._clock.now_ns, self.available_at_ns)
        end = start + duration_ns
        self.available_at_ns = end
        return start, end

    def record_event(self, event: Event) -> None:
        """hipEventRecord: the event completes when prior work completes."""
        event.timestamp_ns = max(self.available_at_ns, self._clock.now_ns)
        if self.trace is not None:
            self.trace.emit(
                "event_record",
                event=self.trace.event_uid(event),
                stream=self.uid,
            )

    def wait_event(self, event: Event) -> None:
        """hipStreamWaitEvent: later work waits for the event."""
        if event.timestamp_ns is None:
            raise UnrecordedEventError(
                f"hipStreamWaitEvent on unrecorded event {event.name!r}: "
                "record the event before making a stream wait on it"
            )
        self.available_at_ns = max(self.available_at_ns, event.timestamp_ns)
        if self.trace is not None:
            self.trace.emit(
                "event_wait",
                event=self.trace.event_uid(event),
                stream=self.uid,
            )

    def synchronize(self) -> None:
        """hipStreamSynchronize: host blocks until the stream drains."""
        self._clock.advance_to(self.available_at_ns)
        if self.trace is not None:
            self.trace.emit("stream_sync", stream=self.uid)

    @property
    def idle(self) -> bool:
        """True when no enqueued work is outstanding at host time."""
        return self.available_at_ns <= self._clock.now_ns


class StreamRegistry:
    """All streams of one runtime, including the default stream 0."""

    def __init__(self, clock: SimClock, trace=None) -> None:
        self._clock = clock
        self.trace = trace
        self.default = Stream(clock, name="stream0", uid="s0")
        self.default.trace = trace
        self._streams: List[Stream] = [self.default]

    def create(self, name: str = "") -> Stream:
        """hipStreamCreate."""
        uid = f"s{len(self._streams)}"
        stream = Stream(
            self._clock, name or f"stream{len(self._streams)}", uid=uid
        )
        stream.trace = self.trace
        self._streams.append(stream)
        return stream

    def resolve(self, stream: Optional[Stream]) -> Stream:
        """Map None to the default stream, as the HIP API does."""
        return stream if stream is not None else self.default

    def device_synchronize(self) -> None:
        """hipDeviceSynchronize: host blocks until every stream drains."""
        horizon = max(s.available_at_ns for s in self._streams)
        self._clock.advance_to(horizon)
        if self.trace is not None:
            self.trace.emit("device_sync")

    def __iter__(self):
        return iter(self._streams)
