"""The top-level simulated APU: all subsystems wired together.

One :class:`APU` instance corresponds to the paper's experimental unit —
a single MI300A bound with ``numactl`` and ``HIP_VISIBLE_DEVICES``
(Section 3).  It owns the clock, the physical pool, the process address
space, both page tables with their HMM mirror, the fault handler, the
memory manager, the GPU/CPU device models, and the Infinity Cache model,
plus the helpers that derive per-buffer performance traits from that
state.
"""

from __future__ import annotations

from typing import Optional


from ..core.address_space import AddressSpace
from ..core.allocators import Allocation, MemoryManager
from ..core.faults import FaultHandler, FaultReport
from ..core.fragments import average_fragment_bytes
from ..core.page_table import GPUPageTable, HMMMirror, SystemPageTable
from ..hw.clock import SimClock
from ..hw.config import MI300AConfig, default_config
from ..hw.hbm import HBMSubsystem, channel_balance
from ..hw.infinity_cache import InfinityCache
from ..hw.topology import APUTopology
from ..partition import PartitionConfig, PartitionPlacement
from ..perf.bandwidth import BufferTraits
from .device import CPUComplex, GPUDevice
from .stream import StreamRegistry


class APU:
    """A fully wired simulated MI300A APU and one process on it.

    Args:
        config: hardware/policy configuration; defaults to the
            paper-calibrated MI300A.
        xnack: whether the process runs with ``HSA_XNACK=1`` (enables
            GPU page-fault replay; flips the on-demand allocators of
            Table 1).
        seed: seed for the deterministic allocation/fault randomness.
        partition: compute/memory partition mode pair; defaults to
            SPX/NPS1 (the paper's testbed), which leaves every model
            identical to the unpartitioned APU.
        trace: record a structured :class:`~repro.analyze.events.EventLog`
            of every allocation, copy, kernel, fault and synchronisation
            for the hipsan pass (:mod:`repro.analyze.sanitizer`).
        inject: an :class:`~repro.inject.InjectionPlan` to attach to the
            APU's fault-injection sites (physical allocator, fault
            handler, HBM ECC, TLB shootdowns).
    """

    def __init__(
        self,
        config: Optional[MI300AConfig] = None,
        xnack: bool = False,
        seed: int = 0x1300A,
        partition: Optional[PartitionConfig] = None,
        trace: bool = False,
        inject=None,
    ) -> None:
        from ..core.physical import PhysicalMemory  # local to keep import light

        self.config = config if config is not None else default_config()
        self.partition = partition if partition is not None else PartitionConfig()
        self.clock = SimClock()
        if trace:
            from ..analyze.events import EventLog  # local: analyze is optional

            self.trace: Optional["EventLog"] = EventLog(self.clock)
        else:
            self.trace = None
        self.physical = PhysicalMemory(self.config, seed=seed)
        self.address_space = AddressSpace()
        self.system_pt = SystemPageTable()
        self.gpu_pt = GPUPageTable()
        self.hmm = HMMMirror(self.system_pt, self.gpu_pt)
        self.faults = FaultHandler(
            self.config, self.physical, self.hmm, xnack_enabled=xnack, seed=seed
        )
        self.faults.trace = self.trace
        self.memory = MemoryManager(
            self.config,
            self.physical,
            self.address_space,
            self.hmm,
            self.faults,
            self.clock,
        )
        self.memory.trace = self.trace
        self.hbm_map = HBMSubsystem(
            self.config.hbm, numa_domains=self.partition.numa_domains
        )
        self.infinity_cache = InfinityCache(self.config.infinity_cache, self.hbm_map)
        self.topology = APUTopology(self.config)
        self.placement = PartitionPlacement(
            self.config, self.partition, self.physical, self.hbm_map
        )
        self.logical_devices = self.placement.devices
        self.gpu = GPUDevice(self.config)
        self.cpu = CPUComplex(self.config)
        self.streams = StreamRegistry(self.clock, trace=self.trace)
        self.inject = inject
        if inject is not None:
            inject.attach(self)

    @property
    def xnack(self) -> bool:
        """Whether XNACK (GPU fault replay) is enabled for this process."""
        return self.faults.xnack_enabled

    # ------------------------------------------------------------------
    # State-derived performance traits
    # ------------------------------------------------------------------

    def buffer_traits(self, allocation: Allocation) -> BufferTraits:
        """Derive the bandwidth-model traits of a buffer from live state."""
        vma = allocation.vma
        gpu_mapped = vma.gpu_valid
        if gpu_mapped.any():
            avg_fragment = average_fragment_bytes(vma.fragment[gpu_mapped])
        else:
            avg_fragment = 0.0
        frames = vma.resident_frames()
        if frames.size:
            balance = channel_balance(self.hbm_map.channel_histogram(frames))
        else:
            balance = 1.0
        return BufferTraits(
            on_demand=allocation.on_demand,
            uncached=vma.uncached,
            average_fragment_bytes=avg_fragment,
            channel_balance=balance,
        )

    def ic_hit_fraction(
        self, allocation: Allocation, working_set_bytes: Optional[int] = None
    ) -> float:
        """Infinity Cache hit fraction for (a prefix of) a buffer."""
        frames = allocation.vma.resident_frames()
        if frames.size == 0:
            return 1.0
        if working_set_bytes is not None:
            pages = max(1, min(len(frames), working_set_bytes // 4096))
            frames = frames[:pages]
        return self.infinity_cache.hit_fraction(frames)

    # ------------------------------------------------------------------
    # Touch (fault) helpers
    # ------------------------------------------------------------------

    def touch(
        self,
        allocation: Allocation,
        device: str,
        offset_bytes: int = 0,
        size_bytes: Optional[int] = None,
        concurrency: int = 1,
        advance_clock: bool = True,
    ) -> FaultReport:
        """Touch a byte range of a buffer from one device.

        Resolves any page faults (or raises
        :class:`~repro.core.faults.GPUMemoryAccessError` for illegal GPU
        access), optionally advancing the simulated clock by the fault
        service time.
        """
        vma = allocation.vma
        if size_bytes is None:
            size_bytes = allocation.size_bytes - offset_bytes
        first, count = vma.page_range(vma.start + offset_bytes, size_bytes)
        report = self.faults.touch_range(
            vma, first, count, device, concurrency=concurrency
        )
        if advance_clock:
            self.clock.advance(report.service_time_ns)
        return report

    def prefault_cpu(self, allocation: Allocation, cores: int = 12) -> FaultReport:
        """The paper's recommended CPU pre-faulting strategy (Section 5.2)."""
        return self.touch(allocation, "cpu", concurrency=cores)

    def __repr__(self) -> str:
        return (
            f"APU({self.config.name}, xnack={self.xnack}, "
            f"partition={self.partition.describe()}, "
            f"t={self.clock.now_ns / 1e6:.3f} ms)"
        )


def make_apu(
    memory_gib: Optional[int] = None,
    xnack: bool = False,
    seed: int = 0x1300A,
    partition: Optional[PartitionConfig] = None,
    trace: bool = False,
    inject=None,
) -> APU:
    """Convenience constructor.

    *memory_gib* of None builds the full 128 GiB APU; small values build
    a down-scaled pool for fast tests (policies unchanged).
    """
    if memory_gib is None:
        return APU(
            xnack=xnack, seed=seed, partition=partition, trace=trace,
            inject=inject,
        )
    from ..hw.config import small_config

    return APU(
        config=small_config(memory_gib << 30),
        xnack=xnack,
        seed=seed,
        partition=partition,
        trace=trace,
        inject=inject,
    )
