"""Machine-readable experiment reports (CSV / JSON export).

The benchmark harness prints the paper's rows for humans; this module
renders the same results as structured records so downstream tooling
(plotting scripts, regression dashboards) can consume them:

    from repro.report import ExperimentReport, collect_fig9

    report = collect_fig9(quick=True)
    report.to_csv("fig9.csv")
    report.to_json("fig9.json")

Every collector returns an :class:`ExperimentReport` — an experiment id,
column names, and rows — and `collect_all` gathers the cheap
model-backed experiments in one call.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .hw.config import GiB, KiB, MiB


@dataclass
class ExperimentReport:
    """One experiment's results as a column/row table."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def to_csv(self, path: str | Path) -> Path:
        """Write the report as CSV; returns the path."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise to JSON (optionally writing to *path*)."""
        payload = json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
            },
            indent=2,
        )
        if path is not None:
            Path(path).write_text(payload)
        return payload

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


# ----------------------------------------------------------------------
# Collectors
# ----------------------------------------------------------------------


def collect_table1() -> ExperimentReport:
    """Table 1: allocator capability matrix."""
    from .core.allocators import allocator_table

    report = ExperimentReport(
        "table1", "Memory allocators on MI300A",
        ["allocator", "xnack", "gpu_access", "cpu_access", "physical"],
    )
    for xnack in (False, True):
        for row in allocator_table(xnack):
            report.add(row["allocator"], xnack, row["gpu_access"],
                       row["cpu_access"], row["physical_allocation"])
    return report


def collect_fig2(quick: bool = False) -> ExperimentReport:
    """Fig. 2: latency curves."""
    from .bench import multichase

    sizes = [1 * KiB, 1 * MiB, 256 * MiB] if quick else None
    allocators = ["malloc", "hipMalloc"] if quick else None
    report = ExperimentReport(
        "fig2", "Pointer-chase latency",
        ["allocator", "device", "size_bytes", "latency_ns"],
    )
    for s in multichase.full_sweep(sizes=sizes, allocators=allocators,
                                   memory_gib=16):
        report.add(s.allocator, s.device, s.size_bytes, round(s.latency_ns, 2))
    return report


def collect_fig6() -> ExperimentReport:
    """Fig. 6: allocation speed."""
    from .bench import allocspeed

    report = ExperimentReport(
        "fig6", "Allocation / deallocation time",
        ["allocator", "size_bytes", "alloc_ns", "free_ns"],
    )
    for s in allocspeed.full_cost_sweep():
        report.add(s.allocator, s.size_bytes, round(s.alloc_ns, 1),
                   round(s.free_ns, 1))
    return report


def collect_fig7() -> ExperimentReport:
    """Fig. 7: page-fault throughput."""
    from .bench import pagefault

    report = ExperimentReport(
        "fig7", "Page-fault throughput",
        ["scenario", "pages", "pages_per_s"],
    )
    for s in pagefault.full_throughput_sweep():
        report.add(s.scenario, s.pages, round(s.pages_per_s, 1))
    return report


def collect_fig8() -> ExperimentReport:
    """Fig. 8: single-fault latency."""
    from .bench import pagefault

    report = ExperimentReport(
        "fig8", "Single-fault latency",
        ["fault_type", "mean_us", "p50_us", "p95_us"],
    )
    for s in pagefault.latency_distributions():
        report.add(s.scenario, round(s.mean_us, 2), round(s.p50_us, 2),
                   round(s.p95_us, 2))
    return report


def collect_fig4(quick: bool = False) -> ExperimentReport:
    """Fig. 4: isolated atomics."""
    from .bench import histogram

    sizes = [1 << 10, 1 << 20] if quick else histogram.ARRAY_SIZES
    report = ExperimentReport(
        "fig4", "Atomics throughput",
        ["device", "dtype", "elements", "threads", "updates_per_s"],
    )
    for dtype in ("uint64", "fp64"):
        for elements in sizes:
            for s in histogram.cpu_sweep(elements, dtype):
                report.add("cpu", dtype, elements, s.threads,
                           round(s.updates_per_s, 1))
            for s in histogram.gpu_sweep(elements, dtype):
                report.add("gpu", dtype, elements, s.threads,
                           round(s.updates_per_s, 1))
    return report


def collect_uvm(quick: bool = False) -> ExperimentReport:
    """Extension: UPM vs UVM vs explicit."""
    from .uvm import three_way_comparison

    size = 256 * MiB if quick else 1 * GiB
    results = three_way_comparison(working_set_bytes=size, iterations=10)
    baseline = results["explicit/discrete"]
    report = ExperimentReport(
        "uvm", "UPM vs UVM vs explicit",
        ["model", "time_ms", "vs_explicit", "moved_bytes"],
    )
    for name, r in results.items():
        report.add(name, round(r.time_ms, 2),
                   round(r.relative_to(baseline), 3), r.moved_bytes)
    return report


#: All cheap collectors keyed by experiment id.
COLLECTORS = {
    "table1": collect_table1,
    "fig4": collect_fig4,
    "fig6": collect_fig6,
    "fig7": collect_fig7,
    "fig8": collect_fig8,
    "uvm": collect_uvm,
}


def collect_all(quick: bool = True) -> Dict[str, ExperimentReport]:
    """Run every cheap collector; returns reports keyed by experiment."""
    out = {}
    for name, collector in COLLECTORS.items():
        try:
            out[name] = collector(quick)  # type: ignore[call-arg]
        except TypeError:
            out[name] = collector()  # collectors without a quick knob
    return out


def export_all(directory: str | Path, quick: bool = True) -> List[Path]:
    """Export every cheap experiment as CSV into *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, report in collect_all(quick).items():
        paths.append(report.to_csv(directory / f"{name}.csv"))
    return paths
