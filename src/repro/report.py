"""Machine-readable experiment reports (CSV / JSON export).

The benchmark harness prints the paper's rows for humans; this module
renders the same results as structured records so downstream tooling
(plotting scripts, regression dashboards) can consume them:

    from repro.report import collect

    report = collect("fig9", quick=True)
    report.to_csv("fig9.csv")
    report.to_json("fig9.json")

Collection is a thin veneer over the :mod:`repro.exp` registry — every
collector resolves its experiment there and runs it through the engine,
so the CSV export, the CLI tables, and the benchmark assertions all see
the same rows.  Exported JSON carries provenance (schema version, git
SHA, ISO timestamp) so result files are comparable across revisions.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Schema version stamped into exported JSON (mirrors repro.exp).
SCHEMA_VERSION = "1"


@dataclass
class ExperimentReport:
    """One experiment's results as a column/row table."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    source: str = ""

    def add(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def to_csv(self, path: str | Path) -> Path:
        """Write the report as CSV; returns the path."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise to JSON (optionally writing to *path*).

        The payload includes provenance — ``schema_version``, ``git_sha``
        and an ISO ``timestamp`` — so exported results from different
        revisions can be compared honestly.
        """
        from .exp import code_version, utc_timestamp

        payload = json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "git_sha": code_version(),
                "timestamp": utc_timestamp(),
                "experiment": self.experiment,
                "title": self.title,
                "source": self.source,
                "columns": self.columns,
                "rows": self.rows,
            },
            indent=2,
        )
        if path is not None:
            Path(path).write_text(payload)
        return payload

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


# ----------------------------------------------------------------------
# Registry-backed collection
# ----------------------------------------------------------------------


def collect(name: str, quick: bool = False, engine=None) -> ExperimentReport:
    """Run one registered experiment and wrap its rows as a report.

    A caller-supplied *engine* (e.g. one holding a shared cache) is
    reused; otherwise a serial, uncached engine is built on the spot.
    A failed point raises, carrying its parameters and traceback —
    collectors never return partial tables silently.
    """
    from .exp import Engine

    engine = engine or Engine(workers=1, cache=None)
    result = engine.run(name, quick=quick)
    if not result.ok:
        failure = result.failures[0]
        raise RuntimeError(
            f"experiment {name!r} failed at point "
            f"{failure.point.describe()}:\n{failure.error}"
        )
    report = ExperimentReport(
        experiment=result.spec.name,
        title=result.spec.title,
        columns=result.columns,
        source=result.spec.source,
    )
    report.rows.extend(result.rows)
    return report


def collect_table1(quick: bool = False) -> ExperimentReport:
    """Table 1: allocator capability matrix."""
    return collect("table1", quick)


def collect_fig2(quick: bool = False) -> ExperimentReport:
    """Fig. 2: latency curves."""
    return collect("fig2", quick)


def collect_fig4(quick: bool = False) -> ExperimentReport:
    """Fig. 4: isolated atomics."""
    return collect("fig4", quick)


def collect_fig6(quick: bool = False) -> ExperimentReport:
    """Fig. 6: allocation speed."""
    return collect("fig6", quick)


def collect_fig7(quick: bool = False) -> ExperimentReport:
    """Fig. 7: page-fault throughput."""
    return collect("fig7", quick)


def collect_fig8(quick: bool = False) -> ExperimentReport:
    """Fig. 8: single-fault latency."""
    return collect("fig8", quick)


def collect_uvm(quick: bool = True) -> ExperimentReport:
    """Extension: UPM vs UVM vs explicit."""
    return collect("uvm", quick)


#: The cheap model-backed collectors exported by default, keyed by
#: experiment id (a subset of the full repro.exp registry — the heavier
#: sweeps are reachable via `collect(name)` or `repro run`).
COLLECTORS = {
    "table1": collect_table1,
    "fig4": collect_fig4,
    "fig6": collect_fig6,
    "fig7": collect_fig7,
    "fig8": collect_fig8,
    "uvm": collect_uvm,
}


def collect_all(
    quick: bool = True, experiments: Optional[List[str]] = None
) -> Dict[str, ExperimentReport]:
    """Collect several experiments (default: the cheap set) in one call.

    A shared serial engine runs them all, so a caller-wide cache (when
    the engine default grows one) would be reused across experiments.
    """
    from .exp import Engine

    engine = Engine(workers=1, cache=None)
    names = experiments if experiments is not None else list(COLLECTORS)
    return {name: collect(name, quick, engine=engine) for name in names}


def export_all(
    directory: str | Path,
    quick: bool = True,
    experiments: Optional[List[str]] = None,
) -> List[Path]:
    """Export experiments (default: the cheap set) as CSV files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, report in collect_all(quick, experiments).items():
        paths.append(report.to_csv(directory / f"{name}.csv"))
    return paths
