"""``python -m repro`` — regenerate the paper's experiments."""

import sys

from .cli import main

sys.exit(main())
